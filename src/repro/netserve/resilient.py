"""The resilient non-strict fetch client.

:class:`ResilientFetcher` extends :class:`.client.NonStrictFetcher`
with every recovery the fault layer (:mod:`repro.faults`) can demand:

* **Reconnect with resume** — a severed connection triggers capped
  exponential backoff (with seeded jitter) and a ``RESUME`` handshake
  carrying the wire keys of every unit already held intact, so the
  server re-sends only what was lost.
* **Targeted unit retry** — a frame that fails its CRC but still names
  its unit (see :func:`.protocol.salvage_unit_key`) is re-requested
  through the demand-fetch path with ``resend=True`` — one damaged
  frame costs one retransmission, not a reconnect.
* **Duplicate suppression** — re-sent and duplicated units are dropped
  by wire key, so buffers and arrival logs converge to exactly one
  copy of each unit.
* **Graceful degradation** — once ``max_reconnects`` is exhausted the
  client falls back to a one-shot *strict* whole-file fetch.  The
  paper's non-strictness is an optimization, never a correctness
  requirement; the degraded session still yields every class, just
  without overlap.  Only when that too fails does the fetch surface
  :class:`~repro.errors.ResilienceExhaustedError`.

Every recovery action emits a typed :mod:`repro.observe` event
(``reconnect``, ``unit_retry``, ``degraded_to_strict``) and bumps the
matching ``netserve_*_total`` counter, so chaos runs are as observable
as clean ones.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Set, Tuple

from ..errors import (
    ConnectionLostError,
    FrameCorruptionError,
    ProtocolError,
    ResilienceExhaustedError,
    ServerBusyError,
    StreamDecodeError,
    TransferError,
)
from ..faults.rng import derive_rng
from ..transfer import UnitKind
from .client import NonStrictFetcher
from .protocol import (
    Frame,
    FrameKind,
    decode_frame,
    demand_fetch_frame,
    hello_frame,
    read_raw_frame,
    resume_frame,
    salvage_unit_key,
    unit_kind_code,
    unit_kind_from_code,
    unit_wire_key,
)

__all__ = ["ResilientFetcher"]

#: A unit's wire identity: (kind code, class name, method name).
UnitKey = Tuple[int, str, Optional[str]]


class ResilientFetcher(NonStrictFetcher):
    """A fetcher that survives cuts, corruption, drops, and stalls.

    Args:
        max_reconnects: Reconnect-with-resume attempts before degrading
            to the strict fallback.  ``0`` degrades immediately on the
            first failure.
        backoff_base: First reconnect delay in seconds; each further
            attempt doubles it.
        backoff_cap: Upper bound on any single backoff delay.
        backoff_jitter: Fraction of the backoff added as seeded random
            jitter (``0.0`` = fully deterministic delays).
        deadline: Overall wall-clock budget in seconds for the entire
            fetch, recoveries included; exceeded ⇒ typed
            :class:`~repro.errors.TransferError` from every waiter.
        seed: Seeds the jitter RNG, so a fixed seed replays the same
            backoff schedule.
        rng_scope: Scope component folded into the jitter RNG's
            derived seed (see :func:`repro.faults.derive_rng`).
            Concurrent fetchers — loadgen workers, the links of a
            striped session — must each pass a distinct scope so their
            backoff jitter stays uncorrelated (no thundering herd) and
            each scope's replay is independent of the others' draws.

    All other arguments match :class:`.client.NonStrictFetcher`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        policy: str = "non_strict",
        strategy: str = "static",
        demand_timeout: float = 5.0,
        demand_retries: int = 3,
        connect_timeout: Optional[float] = 10.0,
        max_reconnects: int = 4,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        backoff_jitter: float = 0.25,
        deadline: Optional[float] = None,
        seed: int = 0,
        rng_scope: str = "",
        recorder=None,
    ) -> None:
        super().__init__(
            host,
            port,
            policy=policy,
            strategy=strategy,
            demand_timeout=demand_timeout,
            demand_retries=demand_retries,
            connect_timeout=connect_timeout,
            recorder=recorder,
        )
        if max_reconnects < 0:
            raise TransferError(
                f"max_reconnects must be >= 0: {max_reconnects}"
            )
        self.max_reconnects = max_reconnects
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_jitter = backoff_jitter
        self.deadline = deadline
        self.seed = seed
        self.rng_scope = rng_scope
        self._rng = derive_rng(seed, "backoff", rng_scope)
        self._expected_keys: Set[UnitKey] = set()
        self._plan_order: Dict[UnitKey, int] = {}
        self._deadline_at: Optional[float] = None
        self._reconnects_used = 0

    # -- lifecycle --------------------------------------------------------

    def _backoff_for(self, attempt: int) -> float:
        """Capped exponential backoff with seeded jitter (attempt ≥ 1)."""
        backoff = min(
            self.backoff_cap,
            self.backoff_base * (2 ** (attempt - 1)),
        )
        return backoff + self._rng.uniform(
            0.0, self.backoff_jitter * backoff
        )

    async def connect(self) -> Dict:
        """Connect, retrying BUSY admission rejections with backoff.

        A fleet-scale server at ``max_connections`` answers with a
        clean BUSY error frame; that is a transient condition, so the
        resilient client backs off and re-dials (up to
        ``max_reconnects`` retries) instead of failing the fetch.
        """
        attempt = 0
        while True:
            try:
                manifest = await super().connect()
                break
            except ServerBusyError:
                if attempt >= self.max_reconnects:
                    raise
                attempt += 1
                self.stats.record_busy_retry()
                await asyncio.sleep(self._backoff_for(attempt))
        self._merge_manifest(manifest)
        if self.deadline is not None:
            self._deadline_at = time.monotonic() + self.deadline
        return manifest

    def _merge_manifest(self, manifest: Dict) -> None:
        """Fold an ack's manifest into the expected set and plan order.

        The first manifest defines the session's unit order; later
        (resume) manifests are subsequences of it, so only unseen keys
        extend the order.
        """
        for entry in manifest.get("sequence", []):
            kind_value, class_name, method_name = (
                entry[0],
                entry[1],
                entry[2],
            )
            key = (
                unit_kind_code(UnitKind(kind_value)),
                str(class_name),
                None if method_name is None else str(method_name),
            )
            self._expected_keys.add(key)
            self._plan_order.setdefault(key, len(self._plan_order))

    # -- completeness -----------------------------------------------------

    def _missing_keys(self) -> Set[UnitKey]:
        """Expected units not yet held (a whole class file satisfies
        every unit of its class — the strict-degradation case)."""
        return {
            key
            for key in self._expected_keys
            if key not in self._received_keys
            and key[1] not in self._classes_complete
        }

    def class_bytes(self, class_name: str) -> bytes:
        """Concatenated payloads for one class, in *plan* order.

        Retried and resumed units arrive out of order; reassembling by
        the manifest's position (arrival index breaks ties) makes a
        chaos run's bytes identical to a fault-free run's.
        """
        fallback = len(self._plan_order)
        ordered = sorted(
            enumerate(self.buffers.get(class_name, [])),
            key=lambda entry: (
                self._plan_order.get(
                    unit_wire_key(entry[1][0]), fallback
                ),
                entry[0],
            ),
        )
        return b"".join(payload for _, (_, payload) in ordered)

    # -- deadline ---------------------------------------------------------

    def _deadline_error(self) -> TransferError:
        return TransferError(
            f"fetch deadline of {self.deadline:.1f}s exceeded"
        )

    def _check_deadline(self) -> None:
        if (
            self._deadline_at is not None
            and time.monotonic() >= self._deadline_at
        ):
            raise self._deadline_error()

    async def _read_raw_with_deadline(self) -> bytes:
        assert self._reader is not None
        if self._deadline_at is None:
            return await read_raw_frame(self._reader)
        remaining = self._deadline_at - time.monotonic()
        if remaining <= 0:
            raise self._deadline_error()
        try:
            return await asyncio.wait_for(
                read_raw_frame(self._reader), timeout=remaining
            )
        except asyncio.TimeoutError as exc:
            raise self._deadline_error() from exc

    # -- receive path -----------------------------------------------------

    def _handle_unit_frame(self, frame: Frame) -> None:
        assert frame.unit is not None
        if unit_wire_key(frame.unit) in self._received_keys:
            # Re-sent after a resume race, or a deliberate duplicate
            # fault: either way the first intact copy already counted.
            self.stats.record_duplicate_unit()
            return
        super()._handle_unit_frame(frame)

    async def _send_demand_frame(self, frame: Frame) -> None:
        try:
            await super()._send_demand_frame(frame)
        except ConnectionLostError:
            # The receive loop is already reconnecting; the resumed
            # session delivers the unit without this nudge.
            pass

    async def _retry_unit(
        self, key: UnitKey, error: FrameCorruptionError
    ) -> None:
        """Re-request exactly one damaged unit via demand-fetch."""
        code, class_name, method_name = key
        self.stats.record_unit_retry()
        if self.recorder is not None:
            self.recorder.unit_retry(
                self.elapsed(),
                class_name=class_name,
                method=method_name,
                reason=str(error),
            )
        await self._send_demand_frame(
            demand_fetch_frame(
                class_name,
                method_name,
                kind=unit_kind_from_code(code),
                resend=True,
            )
        )

    async def _drain_session(self) -> bool:
        """Receive frames until EOF; True iff nothing is missing.

        Raises :class:`~repro.errors.ConnectionLostError` /
        :class:`~repro.errors.StreamDecodeError` for the failures the
        reconnect path can recover from.
        """
        assert self._reader is not None
        while True:
            raw = await self._read_raw_with_deadline()
            try:
                frame, _ = decode_frame(raw)
            except FrameCorruptionError as error:
                key = salvage_unit_key(raw)
                if key is None:
                    raise self._decode_error(raw, error) from error
                self._wire_bytes += len(raw)
                await self._retry_unit(key, error)
                continue
            self._wire_bytes += len(raw)
            self.stats.record_frame(frame.wire_size)
            if frame.kind == FrameKind.UNIT:
                self._handle_unit_frame(frame)
            elif frame.kind == FrameKind.EOF:
                return not self._missing_keys()
            elif frame.kind == FrameKind.ERROR:
                raise ProtocolError(
                    f"server error: {frame.field_dict.get('message')}"
                )
            else:
                raise ProtocolError(
                    f"unexpected {frame.kind.name} frame mid-stream"
                )

    async def _receive_loop(self) -> None:
        try:
            while True:
                try:
                    complete = await self._drain_session()
                except (ConnectionLostError, StreamDecodeError) as error:
                    if await self._recover(error):
                        continue
                    return  # the strict fallback finished the fetch
                if complete:
                    self._eof.set()
                    return
                # EOF arrived with units still missing (dropped
                # frames): resume fills exactly the gaps.
                if not await self._recover(
                    TransferError("server EOF with units still missing")
                ):
                    return
        except TransferError as error:
            self._fail(error)
        except asyncio.CancelledError:
            self._fail(ConnectionLostError("fetcher closed"))
            raise

    # -- recovery ---------------------------------------------------------

    async def _recover(self, error: BaseException) -> bool:
        """Reconnect with resume; True = resumed, False = degraded
        (strict fallback already completed the fetch).

        Raises:
            ResilienceExhaustedError: If the strict fallback fails too.
            TransferError: If the fetch deadline expires mid-recovery.
        """
        if self._writer is not None:
            self._writer.close()
        # The budget spans the whole fetch, not one recovery round —
        # otherwise a plan that faults every connection alternates
        # resume/EOF forever instead of degrading.
        while self._reconnects_used < self.max_reconnects:
            self._reconnects_used += 1
            attempt = self._reconnects_used
            self._check_deadline()
            backoff = self._backoff_for(attempt)
            await asyncio.sleep(backoff)
            self._check_deadline()
            self.stats.record_reconnect()
            if self.recorder is not None:
                self.recorder.reconnect(
                    self.elapsed(),
                    attempt=attempt,
                    backoff=backoff,
                    error=str(error),
                )
            try:
                ack = await self._open_and_negotiate(
                    resume_frame(
                        self.policy,
                        self.strategy,
                        have=sorted(
                            self._received_keys,
                            key=lambda k: (k[0], k[1], k[2] or ""),
                        ),
                    )
                )
                if ack.kind != FrameKind.RESUME_ACK:
                    raise ProtocolError(
                        f"expected RESUME_ACK, got {ack.kind.name}"
                    )
            except (ConnectionLostError, ProtocolError) as retry_error:
                error = retry_error
                continue
            self._merge_manifest(ack.field_dict)
            return True
        return await self._degrade(
            f"{self.max_reconnects} reconnects exhausted: {error}"
        )

    async def _degrade(self, reason: str) -> bool:
        """One-shot strict whole-file fetch; returns False when done.

        Raises:
            ResilienceExhaustedError: If even the strict transfer
                cannot complete.
        """
        self.stats.record_degraded()
        if self.recorder is not None:
            self.recorder.degraded_to_strict(
                self.elapsed(), reason=reason
            )
        try:
            ack = await self._open_and_negotiate(
                hello_frame("strict", self.strategy)
            )
            if ack.kind != FrameKind.HELLO_ACK:
                raise ProtocolError(
                    f"expected HELLO_ACK, got {ack.kind.name}"
                )
            self._merge_manifest(ack.field_dict)
            complete = await self._drain_session()
        except TransferError as exc:
            raise ResilienceExhaustedError(
                f"strict fallback failed ({reason}): {exc}"
            ) from exc
        if not complete:
            missing: List[UnitKey] = sorted(
                self._missing_keys(),
                key=lambda k: (k[0], k[1], k[2] or ""),
            )
            raise ResilienceExhaustedError(
                f"strict fallback still missing {len(missing)} units "
                f"({reason}): {missing[:5]}"
            )
        self._eof.set()
        return False
