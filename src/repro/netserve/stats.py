"""Wall-clock statistics for the real server and fetcher.

Unlike :mod:`repro.core.metrics`, which accounts in simulated CPU
cycles, these structures count what actually happened on the wire.
Since PR 3 they are thin views over a
:class:`repro.observe.MetricsRegistry`: every counter is a labeled
series (``conn``/``peer`` on the server, ``policy`` on the client), so
one snapshot exposes all per-connection and per-session metrics, and
the legacy attribute names (``units_sent``, ``bytes_received``, …)
remain as read-only properties over the registry.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..observe.metrics import Histogram, MetricsRegistry
from ..program import MethodId

__all__ = [
    "ConnectionStats",
    "ServerStats",
    "FetchStats",
    "format_fetch_stats",
]

#: Stall-histogram bucket bounds, in seconds (localhost to modem-ish).
STALL_BUCKETS = (0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0)


class ConnectionStats:
    """One client connection, as seen by the server.

    Counters live in the owning :class:`ServerStats` registry under
    this connection's labels; identity fields stay plain attributes.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        labels: Mapping[str, str],
        peer: str = "",
    ) -> None:
        self._registry = registry
        self._labels = dict(labels)
        self.peer = peer
        self.policy = ""
        self.strategy = ""
        self.started_at = 0.0
        self.finished_at: Optional[float] = None
        self.aborted = False

    def _counter(self, name: str):
        return self._registry.counter(name, self._labels)

    # -- recording (server call sites) ------------------------------------

    def record_frame(self, wire_bytes: int, unit: bool = False) -> None:
        """Account one sent frame (and optionally its transfer unit)."""
        self._counter("netserve_frames_sent").inc()
        self._counter("netserve_bytes_sent").inc(wire_bytes)
        if unit:
            self._counter("netserve_units_sent").inc()

    def record_demand_fetch(self, promoted_units: int) -> None:
        self._counter("netserve_demand_fetches").inc()
        if promoted_units:
            self._counter("netserve_promoted_units").inc(promoted_units)

    def record_fault(self, kind: str) -> None:
        """Account one deliberately injected fault, labeled by kind."""
        self._registry.counter(
            "netserve_faults_injected",
            {**self._labels, "fault": kind},
        ).inc()

    def record_resume(self, skipped_units: int) -> None:
        """Account a RESUME negotiation and the units it skipped."""
        self._counter("netserve_resumes").inc()
        if skipped_units:
            self._counter("netserve_resume_skipped_units").inc(
                skipped_units
            )

    def record_pull_session(self) -> None:
        """Account a session negotiated in pull mode (striped link)."""
        self._counter("netserve_pull_sessions").inc()

    # -- legacy read interface --------------------------------------------

    @property
    def frames_sent(self) -> int:
        return int(self._counter("netserve_frames_sent").value)

    @property
    def units_sent(self) -> int:
        return int(self._counter("netserve_units_sent").value)

    @property
    def bytes_sent(self) -> int:
        return int(self._counter("netserve_bytes_sent").value)

    @property
    def demand_fetches(self) -> int:
        return int(self._counter("netserve_demand_fetches").value)

    @property
    def promoted_units(self) -> int:
        return int(self._counter("netserve_promoted_units").value)

    @property
    def resumes(self) -> int:
        return int(self._counter("netserve_resumes").value)

    @property
    def pull_sessions(self) -> int:
        return int(self._counter("netserve_pull_sessions").value)

    @property
    def duration(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class ServerStats:
    """All connections a server has handled, over one registry."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.connections: List[ConnectionStats] = []

    def open_connection(
        self, peer: str, started_at: float
    ) -> ConnectionStats:
        """Create the labeled per-connection series and its view."""
        conn = ConnectionStats(
            self.metrics,
            labels={"conn": str(len(self.connections)), "peer": peer},
            peer=peer,
        )
        conn.started_at = started_at
        self.connections.append(conn)
        self.metrics.counter("netserve_connections_total").inc()
        return conn

    def record_rejected(self) -> None:
        """Account one connection turned away by admission control."""
        self.metrics.counter("netserve_rejected_connections").inc()

    def record_demand_loop_error(self) -> None:
        """Account one unexpected demand-loop failure at teardown."""
        self.metrics.counter("netserve_demand_loop_errors").inc()

    def set_active(self, count: int) -> None:
        """Publish the current live-connection count as a gauge."""
        self.metrics.gauge("netserve_active_connections").set(count)

    @property
    def rejected_connections(self) -> int:
        return int(
            self.metrics.counter("netserve_rejected_connections").value
        )

    @property
    def demand_loop_errors(self) -> int:
        return int(
            self.metrics.counter("netserve_demand_loop_errors").value
        )

    @property
    def active_connections(self) -> int:
        return int(
            self.metrics.gauge("netserve_active_connections").value
        )

    @property
    def bytes_sent(self) -> int:
        return int(self.metrics.counter_total("netserve_bytes_sent"))

    @property
    def units_sent(self) -> int:
        return int(self.metrics.counter_total("netserve_units_sent"))

    @property
    def demand_fetches(self) -> int:
        return int(
            self.metrics.counter_total("netserve_demand_fetches")
        )

    @property
    def faults_injected(self) -> int:
        return int(
            self.metrics.counter_total("netserve_faults_injected")
        )

    @property
    def resumes(self) -> int:
        return int(self.metrics.counter_total("netserve_resumes"))

    def snapshot(self) -> Dict[str, List[Dict[str, object]]]:
        return self.metrics.snapshot()


class FetchStats:
    """One fetch session, as seen by the client."""

    def __init__(self, policy: str = "", strategy: str = "") -> None:
        self.metrics = MetricsRegistry()
        self.policy = policy
        self.strategy = strategy
        self._labels = {"policy": policy}
        self.stall_seconds: Dict[MethodId, float] = {}

    def _counter(self, name: str):
        return self.metrics.counter(name, self._labels)

    # -- recording (client call sites) ------------------------------------

    def record_frame(self, wire_bytes: int) -> None:
        self._counter("netserve_frames_received").inc()
        self._counter("netserve_bytes_received").inc(wire_bytes)

    def record_unit(self, payload_bytes: int) -> None:
        self._counter("netserve_units_received").inc()
        self._counter("netserve_payload_bytes").inc(payload_bytes)

    def record_demand_fetch(self) -> None:
        self._counter("netserve_demand_fetches").inc()

    def record_reconnect(self) -> None:
        self._counter("netserve_reconnects_total").inc()

    def record_degraded(self) -> None:
        self._counter("netserve_degraded_total").inc()

    def record_unit_retry(self) -> None:
        self._counter("netserve_unit_retries_total").inc()

    def record_duplicate_unit(self) -> None:
        self._counter("netserve_duplicate_units_total").inc()

    def record_busy_retry(self) -> None:
        """Account one BUSY rejection retried with backoff."""
        self._counter("netserve_busy_retries_total").inc()

    # -- striped (multi-link) recording ------------------------------------

    def _link_counter(self, name: str, link: object):
        return self.metrics.counter(
            name, {**self._labels, "link": str(link)}
        )

    def record_link_unit(self, link: object, payload_bytes: int) -> None:
        """Account one unit landed on a specific link."""
        self._link_counter("netserve_link_units_total", link).inc()
        self._link_counter("netserve_link_bytes_total", link).inc(
            payload_bytes
        )

    def record_link_outage(self, link: object) -> None:
        """Account one link declared dead (circuit opened)."""
        self._link_counter("netserve_link_outages_total", link).inc()

    def record_link_reconnect(self, link: object) -> None:
        """Account one reconnect attempt on a specific link."""
        self._link_counter("netserve_link_reconnects_total", link).inc()

    def set_link_state(self, link: object, state: int) -> None:
        """Publish a link's health as a gauge (see ``LinkState``)."""
        self.metrics.gauge(
            "netserve_link_state", {**self._labels, "link": str(link)}
        ).set(state)

    def record_hedge(self) -> None:
        """Account one hedge fired (second issue of a demanded class)."""
        self._counter("netserve_hedges_total").inc()

    def record_hedge_win(self, role: str) -> None:
        """Account the winner of a hedge race, labeled by role."""
        self.metrics.counter(
            "netserve_hedge_wins_total", {**self._labels, "role": role}
        ).inc()

    def record_cancelled_tasks(self, count: int) -> None:
        """Account background tasks cancelled at teardown."""
        if count:
            self._counter("netserve_cancelled_tasks_total").inc(count)

    def record_stall(self, method: MethodId, seconds: float) -> None:
        self.stall_seconds[method] = (
            self.stall_seconds.get(method, 0.0) + seconds
        )
        self.stall_histogram.observe(seconds)

    # -- legacy read interface --------------------------------------------

    @property
    def frames_received(self) -> int:
        return int(self._counter("netserve_frames_received").value)

    @property
    def units_received(self) -> int:
        return int(self._counter("netserve_units_received").value)

    @property
    def bytes_received(self) -> int:
        """Wire bytes, frame overhead included."""
        return int(self._counter("netserve_bytes_received").value)

    @property
    def payload_bytes(self) -> int:
        return int(self._counter("netserve_payload_bytes").value)

    @property
    def demand_fetches(self) -> int:
        return int(self._counter("netserve_demand_fetches").value)

    @property
    def reconnects(self) -> int:
        return int(self._counter("netserve_reconnects_total").value)

    @property
    def degraded(self) -> int:
        return int(self._counter("netserve_degraded_total").value)

    @property
    def unit_retries(self) -> int:
        return int(self._counter("netserve_unit_retries_total").value)

    @property
    def duplicate_units(self) -> int:
        return int(
            self._counter("netserve_duplicate_units_total").value
        )

    @property
    def busy_retries(self) -> int:
        return int(self._counter("netserve_busy_retries_total").value)

    @property
    def link_outages(self) -> int:
        return int(
            self.metrics.counter_total("netserve_link_outages_total")
        )

    @property
    def link_reconnects(self) -> int:
        return int(
            self.metrics.counter_total(
                "netserve_link_reconnects_total"
            )
        )

    @property
    def hedges(self) -> int:
        return int(self._counter("netserve_hedges_total").value)

    @property
    def hedge_wins(self) -> int:
        return int(
            self.metrics.counter_total("netserve_hedge_wins_total")
        )

    @property
    def cancelled_tasks(self) -> int:
        return int(
            self._counter("netserve_cancelled_tasks_total").value
        )

    def link_units(self, link: object) -> int:
        """Units landed on one link (0 for a link that never landed)."""
        return int(
            self._link_counter("netserve_link_units_total", link).value
        )

    @property
    def stall_histogram(self) -> Histogram:
        return self.metrics.histogram(
            "netserve_stall_seconds",
            self._labels,
            buckets=STALL_BUCKETS,
        )

    @property
    def total_stall_seconds(self) -> float:
        return sum(self.stall_seconds.values())

    def snapshot(self) -> Dict[str, List[Dict[str, object]]]:
        return self.metrics.snapshot()


def format_fetch_stats(stats: FetchStats) -> str:
    """Human-readable multi-line summary for the CLI."""
    lines = [
        f"policy:            {stats.policy}",
        f"strategy:          {stats.strategy}",
        f"units received:    {stats.units_received}",
        f"bytes on wire:     {stats.bytes_received:,}",
        f"payload bytes:     {stats.payload_bytes:,}",
        f"demand fetches:    {stats.demand_fetches}",
        f"stall time total:  {stats.total_stall_seconds * 1e3:.1f} ms",
    ]
    if stats.reconnects or stats.unit_retries or stats.degraded:
        lines.extend(
            [
                f"reconnects:        {stats.reconnects}",
                f"unit retries:      {stats.unit_retries}",
                f"degraded:          "
                f"{'yes' if stats.degraded else 'no'}",
            ]
        )
    for method, seconds in sorted(
        stats.stall_seconds.items(), key=lambda item: -item[1]
    ):
        lines.append(f"  stall {method}: {seconds * 1e3:.1f} ms")
    return "\n".join(lines)
