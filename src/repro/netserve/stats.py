"""Wall-clock counters for the real server and fetcher.

Unlike :mod:`repro.core.metrics`, which accounts in simulated CPU
cycles, these structures count what actually happened on the wire:
bytes sent/received (frame overhead included), demand fetches, and the
wall-clock seconds execution spent stalled per method.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..program import MethodId

__all__ = [
    "ConnectionStats",
    "ServerStats",
    "FetchStats",
    "format_fetch_stats",
]


@dataclass
class ConnectionStats:
    """One client connection, as seen by the server."""

    peer: str = ""
    policy: str = ""
    strategy: str = ""
    frames_sent: int = 0
    units_sent: int = 0
    bytes_sent: int = 0
    demand_fetches: int = 0
    promoted_units: int = 0
    started_at: float = 0.0
    finished_at: Optional[float] = None
    aborted: bool = False

    @property
    def duration(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at


@dataclass
class ServerStats:
    """All connections a server has handled."""

    connections: List[ConnectionStats] = field(default_factory=list)

    @property
    def bytes_sent(self) -> int:
        return sum(conn.bytes_sent for conn in self.connections)

    @property
    def units_sent(self) -> int:
        return sum(conn.units_sent for conn in self.connections)

    @property
    def demand_fetches(self) -> int:
        return sum(conn.demand_fetches for conn in self.connections)


@dataclass
class FetchStats:
    """One fetch session, as seen by the client."""

    policy: str = ""
    strategy: str = ""
    frames_received: int = 0
    units_received: int = 0
    bytes_received: int = 0  # wire bytes, frame overhead included
    payload_bytes: int = 0
    demand_fetches: int = 0
    stall_seconds: Dict[MethodId, float] = field(default_factory=dict)

    @property
    def total_stall_seconds(self) -> float:
        return sum(self.stall_seconds.values())

    def record_stall(self, method: MethodId, seconds: float) -> None:
        self.stall_seconds[method] = (
            self.stall_seconds.get(method, 0.0) + seconds
        )


def format_fetch_stats(stats: FetchStats) -> str:
    """Human-readable multi-line summary for the CLI."""
    lines = [
        f"policy:            {stats.policy}",
        f"strategy:          {stats.strategy}",
        f"units received:    {stats.units_received}",
        f"bytes on wire:     {stats.bytes_received:,}",
        f"payload bytes:     {stats.payload_bytes:,}",
        f"demand fetches:    {stats.demand_fetches}",
        f"stall time total:  {stats.total_stall_seconds * 1e3:.1f} ms",
    ]
    for method, seconds in sorted(
        stats.stall_seconds.items(), key=lambda item: -item[1]
    ):
        lines.append(f"  stall {method}: {seconds * 1e3:.1f} ms")
    return "\n".join(lines)
