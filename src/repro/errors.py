"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  Subsystems raise the most
specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class BytecodeError(ReproError):
    """Malformed bytecode: bad opcode, bad operand, truncated stream."""


class AssemblyError(BytecodeError):
    """Error while assembling textual or builder-based bytecode."""


class ClassFileError(ReproError):
    """Malformed or inconsistent class file structure."""


class ConstantPoolError(ClassFileError):
    """Invalid constant pool index, tag, or entry layout."""


class VerificationError(ReproError):
    """A class file or method failed the verifier's structural checks."""


class LinkError(ReproError):
    """Symbolic reference resolution failed during (incremental) linking."""


class VMError(ReproError):
    """Runtime error inside the bytecode interpreter."""


class StackUnderflowError(VMError):
    """An instruction popped more operands than the stack holds."""


class CFGError(ReproError):
    """Control-flow graph construction or analysis failure."""


class ReorderError(ReproError):
    """First-use estimation or class file restructuring failure."""


class TransferError(ReproError):
    """Invalid transfer plan, schedule, or stream engine state."""


class ProtocolError(TransferError):
    """The netserve wire protocol was violated by a peer."""


class FrameCorruptionError(ProtocolError):
    """A frame failed validation: bad magic, bad CRC, malformed body."""


class TruncatedFrameError(ProtocolError):
    """A frame ended before its declared length (more bytes needed)."""


class StreamDecodeError(ProtocolError):
    """Mid-stream decoding failed, with unit context attached.

    Wraps a lower-level :class:`ProtocolError` so the caller learns
    *where* in the unit stream decoding broke: the most recent
    successfully decoded unit (if any) and the stream byte offset at
    which the failing frame began.
    """

    def __init__(
        self,
        message: str,
        class_name: "str | None" = None,
        method_name: "str | None" = None,
        byte_offset: int = 0,
    ) -> None:
        super().__init__(message)
        self.class_name = class_name
        self.method_name = method_name
        self.byte_offset = byte_offset


class ServerBusyError(ProtocolError):
    """The server's admission control turned the connection away.

    Raised when a session handshake receives an ``ERROR`` frame with
    ``code: "busy"`` (the server is at ``max_connections``).  Unlike
    other protocol errors this one is *transient*: the resilient
    fetcher retries it with backoff instead of failing the fetch.
    """


class ConnectionLostError(TransferError):
    """The peer disappeared mid-stream (reset, abort, or silent close)."""


class ResilienceExhaustedError(TransferError):
    """Every recovery path failed: reconnects, resume, and the strict
    whole-file fallback."""


class FaultPlanError(ReproError):
    """A fault-injection plan is malformed or self-contradictory."""


class SimulationError(ReproError):
    """Co-simulation reached an inconsistent state (e.g. deadlock)."""


class CompileError(ReproError):
    """Mini-language front end error (lexing, parsing, or codegen)."""


class WorkloadError(ReproError):
    """Workload specification or synthesis failure."""


class AnalysisError(ReproError):
    """Static analysis was asked something it cannot answer."""
