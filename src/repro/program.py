"""The mobile program: a set of class files plus an entry point.

Every subsystem (VM, CFG analysis, reordering, transfer, simulation)
operates on :class:`Program`.  Methods are identified by
:class:`MethodId` — ``(class_name, method_name)`` — since the model has
no overloading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .classfile import ClassFile, MethodInfo
from .errors import ClassFileError

__all__ = ["MethodId", "Program"]


@dataclass(frozen=True, order=True)
class MethodId:
    """Identity of a method within a program."""

    class_name: str
    method_name: str

    def __str__(self) -> str:
        return f"{self.class_name}.{self.method_name}"


@dataclass
class Program:
    """A mobile program: class files in transfer order plus ``main``.

    Attributes:
        classes: Class files; list order is the default (strict)
            transfer order, with the entry class customarily first.
        entry_point: The method where remote execution begins.
    """

    classes: List[ClassFile] = field(default_factory=list)
    entry_point: Optional[MethodId] = None

    def __post_init__(self) -> None:
        names = [classfile.name for classfile in self.classes]
        if len(names) != len(set(names)):
            raise ClassFileError(f"duplicate class names in {names!r}")
        if self.entry_point is None and self.classes:
            first = self.classes[0]
            if first.has_method("main"):
                self.entry_point = MethodId(first.name, "main")

    # -- lookup ----------------------------------------------------------

    def class_named(self, name: str) -> ClassFile:
        for classfile in self.classes:
            if classfile.name == name:
                return classfile
        raise ClassFileError(f"no class {name!r} in program")

    def has_class(self, name: str) -> bool:
        return any(classfile.name == name for classfile in self.classes)

    def method(self, method_id: MethodId) -> MethodInfo:
        return self.class_named(method_id.class_name).method(
            method_id.method_name
        )

    def has_method(self, method_id: MethodId) -> bool:
        return self.has_class(method_id.class_name) and self.class_named(
            method_id.class_name
        ).has_method(method_id.method_name)

    def resolve_entry(self) -> MethodId:
        """The entry point, validated to exist.

        Raises:
            ClassFileError: If no entry point is set or it is missing.
        """
        if self.entry_point is None:
            raise ClassFileError("program has no entry point")
        if not self.has_method(self.entry_point):
            raise ClassFileError(
                f"entry point {self.entry_point} does not exist"
            )
        return self.entry_point

    # -- iteration --------------------------------------------------------

    def method_ids(self) -> Iterator[MethodId]:
        """All methods, class by class, in file order."""
        for classfile in self.classes:
            for method in classfile.methods:
                yield MethodId(classfile.name, method.name)

    def methods(self) -> Iterator[Tuple[MethodId, MethodInfo]]:
        for classfile in self.classes:
            for method in classfile.methods:
                yield MethodId(classfile.name, method.name), method

    @property
    def class_names(self) -> List[str]:
        return [classfile.name for classfile in self.classes]

    @property
    def method_count(self) -> int:
        return sum(len(classfile.methods) for classfile in self.classes)

    # -- restructuring -----------------------------------------------------

    def restructured(
        self, method_orders: Dict[str, List[str]]
    ) -> "Program":
        """A copy with per-class method orders applied.

        Args:
            method_orders: Class name → new method-name order.  Classes
                not mentioned keep their current order.
        """
        classes = [
            classfile.reordered(method_orders[classfile.name])
            if classfile.name in method_orders
            else classfile
            for classfile in self.classes
        ]
        return Program(classes=classes, entry_point=self.entry_point)

    def with_class_order(self, class_order: Iterable[str]) -> "Program":
        """A copy with classes permuted into ``class_order``."""
        order = list(class_order)
        if sorted(order) != sorted(self.class_names):
            raise ClassFileError(
                f"class order {order!r} is not a permutation of "
                f"{self.class_names!r}"
            )
        by_name = {classfile.name: classfile for classfile in self.classes}
        return Program(
            classes=[by_name[name] for name in order],
            entry_point=self.entry_point,
        )
