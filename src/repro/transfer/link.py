"""Network link models.

The paper evaluates a T1 line (1 Mb/s) and a 28.8K modem against a
500 MHz Alpha, quoting ≈3,815 cycles/byte and ≈134,698 cycles/byte
respectively (§6.1).  We use those exact constants so cycle counts are
directly comparable in shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import TransferError

__all__ = [
    "NetworkLink",
    "LossyLink",
    "T1_LINK",
    "MODEM_LINK",
    "link_from_bandwidth",
    "links_from_bandwidths",
    "lossy_link",
]

#: Paper's CPU model: 500 MHz DEC Alpha 21164.
CPU_HZ = 500_000_000


@dataclass(frozen=True)
class NetworkLink:
    """A fixed-bandwidth link, measured in CPU cycles per byte.

    Attributes:
        name: Display name ("T1", "modem", ...).
        cycles_per_byte: CPU cycles needed to transfer one byte.
    """

    name: str
    cycles_per_byte: float

    def __post_init__(self) -> None:
        if self.cycles_per_byte <= 0:
            raise TransferError(
                f"cycles_per_byte must be positive, got "
                f"{self.cycles_per_byte}"
            )

    @property
    def bytes_per_cycle(self) -> float:
        return 1.0 / self.cycles_per_byte

    def transfer_cycles(self, size_bytes: float) -> float:
        """Cycles to move ``size_bytes`` at full bandwidth."""
        if size_bytes < 0:
            raise TransferError(f"negative transfer size {size_bytes}")
        return size_bytes * self.cycles_per_byte

    def transfer_seconds(self, size_bytes: float) -> float:
        """Wall-clock seconds on the paper's 500 MHz CPU."""
        return self.transfer_cycles(size_bytes) / CPU_HZ


def link_from_bandwidth(
    name: str, bits_per_second: float, cpu_hz: float = CPU_HZ
) -> NetworkLink:
    """Build a link from a bandwidth in bits/second."""
    if bits_per_second <= 0:
        raise TransferError(
            f"bandwidth must be positive, got {bits_per_second}"
        )
    bytes_per_second = bits_per_second / 8.0
    return NetworkLink(
        name=name, cycles_per_byte=cpu_hz / bytes_per_second
    )


def links_from_bandwidths(
    bits_per_second: Sequence[float],
    cpu_hz: float = CPU_HZ,
    prefix: str = "link",
) -> Tuple[NetworkLink, ...]:
    """Build a validated heterogeneous link set from bandwidths.

    Each bandwidth (bits/second) becomes one :class:`NetworkLink` named
    deterministically from its position and rate
    (``"link0@1e+06bps"``), so sweep configurations, CLI ``--links``
    specs, and persisted benchmark rows all agree on link identity.

    Raises:
        TransferError: If the sequence is empty or any bandwidth is
            non-positive.
    """
    if not bits_per_second:
        raise TransferError("links_from_bandwidths needs >= 1 bandwidth")
    links = []
    for index, bps in enumerate(bits_per_second):
        if bps <= 0:
            raise TransferError(
                f"bandwidth must be positive, got {bps} at index {index}"
            )
        links.append(
            link_from_bandwidth(
                f"{prefix}{index}@{bps:g}bps", bps, cpu_hz=cpu_hz
            )
        )
    return tuple(links)


@dataclass(frozen=True)
class LossyLink(NetworkLink):
    """A link whose packets are lost and retransmitted.

    ``cycles_per_byte`` is the *effective* (loss-inflated) rate the
    stream engine sees, so the cycle-exact simulator runs loss sweeps
    without any change to its event loop; the loss parameters are kept
    for reporting.  Build instances with :func:`lossy_link`.

    Attributes:
        loss_probability: Per-packet loss probability in ``[0, 1)``.
        retransmit_penalty_cycles: Extra cycles (timeout + resend
            turnaround) paid per lost packet, on top of resending it.
        mtu_bytes: Packet size the loss process acts on.
        base_cycles_per_byte: The fault-free link's rate.
    """

    loss_probability: float = 0.0
    retransmit_penalty_cycles: float = 0.0
    mtu_bytes: float = 1500.0
    base_cycles_per_byte: float = 0.0


def lossy_link(
    base: NetworkLink,
    loss_probability: float,
    retransmit_penalty_cycles: float = 0.0,
    mtu_bytes: float = 1500.0,
) -> NetworkLink:
    """Degrade ``base`` with packet loss and retransmission.

    Models ``mtu_bytes``-sized packets, each independently lost with
    ``loss_probability``; a lost packet is retransmitted (expected
    attempts ``1 / (1 - p)``) and every loss additionally costs
    ``retransmit_penalty_cycles`` of timeout/turnaround latency.  The
    expected cost folds into one effective cycles-per-byte rate::

        cpb' = cpb / (1 - p) + (p / (1 - p)) * penalty / mtu

    With ``loss_probability == 0`` the base link is returned unchanged,
    so sweeps can start at a true zero point.
    """
    if not 0.0 <= loss_probability < 1.0:
        raise TransferError(
            f"loss probability must be in [0, 1): {loss_probability}"
        )
    if retransmit_penalty_cycles < 0:
        raise TransferError(
            f"retransmit penalty must be >= 0: "
            f"{retransmit_penalty_cycles}"
        )
    if mtu_bytes <= 0:
        raise TransferError(f"mtu must be positive: {mtu_bytes}")
    if loss_probability == 0.0:
        return base
    survival = 1.0 - loss_probability
    effective = (
        base.cycles_per_byte / survival
        + (loss_probability / survival)
        * retransmit_penalty_cycles
        / mtu_bytes
    )
    return LossyLink(
        name=f"{base.name}+loss{loss_probability:g}",
        cycles_per_byte=effective,
        loss_probability=loss_probability,
        retransmit_penalty_cycles=retransmit_penalty_cycles,
        mtu_bytes=mtu_bytes,
        base_cycles_per_byte=base.cycles_per_byte,
    )


#: T1 link: paper's ≈3,815 cycles per byte (1 Mb/s at 500 MHz).
T1_LINK = NetworkLink("T1", 3815.0)

#: 28.8 Kbaud modem: paper's ≈134,698 cycles per byte.
MODEM_LINK = NetworkLink("modem", 134698.0)
