"""Network link models.

The paper evaluates a T1 line (1 Mb/s) and a 28.8K modem against a
500 MHz Alpha, quoting ≈3,815 cycles/byte and ≈134,698 cycles/byte
respectively (§6.1).  We use those exact constants so cycle counts are
directly comparable in shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TransferError

__all__ = ["NetworkLink", "T1_LINK", "MODEM_LINK", "link_from_bandwidth"]

#: Paper's CPU model: 500 MHz DEC Alpha 21164.
CPU_HZ = 500_000_000


@dataclass(frozen=True)
class NetworkLink:
    """A fixed-bandwidth link, measured in CPU cycles per byte.

    Attributes:
        name: Display name ("T1", "modem", ...).
        cycles_per_byte: CPU cycles needed to transfer one byte.
    """

    name: str
    cycles_per_byte: float

    def __post_init__(self) -> None:
        if self.cycles_per_byte <= 0:
            raise TransferError(
                f"cycles_per_byte must be positive, got "
                f"{self.cycles_per_byte}"
            )

    @property
    def bytes_per_cycle(self) -> float:
        return 1.0 / self.cycles_per_byte

    def transfer_cycles(self, size_bytes: float) -> float:
        """Cycles to move ``size_bytes`` at full bandwidth."""
        if size_bytes < 0:
            raise TransferError(f"negative transfer size {size_bytes}")
        return size_bytes * self.cycles_per_byte

    def transfer_seconds(self, size_bytes: float) -> float:
        """Wall-clock seconds on the paper's 500 MHz CPU."""
        return self.transfer_cycles(size_bytes) / CPU_HZ


def link_from_bandwidth(
    name: str, bits_per_second: float, cpu_hz: float = CPU_HZ
) -> NetworkLink:
    """Build a link from a bandwidth in bits/second."""
    if bits_per_second <= 0:
        raise TransferError(
            f"bandwidth must be positive, got {bits_per_second}"
        )
    bytes_per_second = bits_per_second / 8.0
    return NetworkLink(
        name=name, cycles_per_byte=cpu_hz / bytes_per_second
    )


#: T1 link: paper's ≈3,815 cycles per byte (1 Mb/s at 500 MHz).
T1_LINK = NetworkLink("T1", 3815.0)

#: 28.8 Kbaud modem: paper's ≈134,698 cycles per byte.
MODEM_LINK = NetworkLink("modem", 134698.0)
