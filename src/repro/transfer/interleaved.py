"""Interleaved file transfer (paper §5.2, Figure 5).

All class files are composed into a single *virtual interleaved file*:
method transfer units from different classes are interspersed in
first-use order, each preceded (on its class's first appearance) by the
class's global data unit.  The single stream gets the full bandwidth,
one transfer unit at a time; trailing units (unused global data,
never-used methods already ordered last) transfer after everything the
prediction says will be needed.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..errors import TransferError
from ..program import MethodId, Program
from ..reorder import FirstUseOrder
from .base import TransferController
from .streams import StreamEngine
from .units import (
    ClassTransferPlan,
    TransferPolicy,
    TransferUnit,
    UnitKind,
    build_program_plans,
)

__all__ = ["InterleavedController", "build_interleaved_file"]


def build_interleaved_file(
    plans: Dict[str, ClassTransferPlan],
    order: FirstUseOrder,
) -> List[TransferUnit]:
    """Compose the virtual interleaved file's unit sequence.

    For each method in first-use order: the owning class's leading
    global unit is emitted on first encounter, then the method's unit.
    Trailing units (unused global data) are appended at the end.

    Raises:
        TransferError: If the order references a class with no plan.
    """
    emitted_classes: Set[str] = set()
    sequence: List[TransferUnit] = []
    for method_id in order.interleaved_order():
        plan = plans.get(method_id.class_name)
        if plan is None:
            raise TransferError(
                f"no transfer plan for class {method_id.class_name!r}"
            )
        if method_id.class_name not in emitted_classes:
            emitted_classes.add(method_id.class_name)
            leading = plan.units[0]
            if leading.kind not in (
                UnitKind.GLOBAL_DATA,
                UnitKind.GLOBAL_FIRST,
            ):
                raise TransferError(
                    f"plan for {method_id.class_name!r} does not start "
                    "with a global unit (is it strict?)"
                )
            sequence.append(leading)
        sequence.append(plan.method_unit(method_id.method_name))
    for class_name, plan in plans.items():
        for unit in plan.units:
            if unit.kind == UnitKind.GLOBAL_UNUSED:
                sequence.append(unit)
        if class_name not in emitted_classes:
            # A class none of whose methods are in the order: transfer
            # it whole at the end.
            sequence.extend(
                unit
                for unit in plan.units
                if unit.kind != UnitKind.GLOBAL_UNUSED
            )
    return sequence


class InterleavedController(TransferController):
    """Single-stream transfer of the virtual interleaved file."""

    name = "interleaved"

    def __init__(
        self,
        program: Program,
        order: FirstUseOrder,
        data_partitioning: bool = False,
        block_delimiters: bool = False,
    ) -> None:
        policy = (
            TransferPolicy.DATA_PARTITIONED
            if data_partitioning
            else TransferPolicy.NON_STRICT
        )
        self.program = program
        self.order = order
        self.plans = build_program_plans(
            program, policy, block_delimiters=block_delimiters
        )
        self.sequence = build_interleaved_file(self.plans, order)

    def setup(self, engine: StreamEngine) -> None:
        if self.recorder is not None:
            self.recorder.schedule_decision(
                engine.time,
                action="stream_start",
                target="interleaved",
                units=len(self.sequence),
            )
        engine.request_stream("interleaved", self.sequence)

    def required_unit(self, method_id: MethodId) -> TransferUnit:
        plan = self.plans.get(method_id.class_name)
        if plan is None:
            raise TransferError(
                f"no transfer plan for class {method_id.class_name!r}"
            )
        return plan.method_unit(method_id.method_name)
