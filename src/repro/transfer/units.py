"""Transfer units and per-class transfer plans.

Under strict semantics a class file is one indivisible unit.  Under
non-strict semantics (§3) it decomposes into a global-data unit followed
by one unit per method (local data + code + delimiter).  With data
partitioning (§7.3) the global unit shrinks to the needed-first chunk,
each method unit gains its GMD, and unused global data trails the file.

A :class:`ClassTransferPlan` is the *in-order* unit stream for one class
file; every transfer methodology (strict, parallel, interleaved) moves
these same units, differing only in how streams share the link.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..classfile import METHOD_DELIMITER_SIZE, class_layout
from ..cfg import partition_blocks
from ..datapart import DataPartition, partition_class
from ..errors import TransferError
from ..program import MethodId, Program

__all__ = [
    "UnitKind",
    "TransferUnit",
    "ClassTransferPlan",
    "TransferPolicy",
    "build_class_plan",
    "build_program_plans",
]


class TransferPolicy(enum.Enum):
    """How class files decompose into transfer units."""

    STRICT = "strict"
    NON_STRICT = "non_strict"
    DATA_PARTITIONED = "data_partitioned"


class UnitKind(enum.Enum):
    """What a transfer unit carries."""

    CLASS_FILE = "class_file"  # strict: the whole file
    GLOBAL_DATA = "global_data"  # non-strict: all global data up front
    GLOBAL_FIRST = "global_first"  # partitioned: needed-first chunk
    METHOD = "method"  # method code + local data (+ GMD) + delimiter
    GLOBAL_UNUSED = "global_unused"  # partitioned: trailing unused data


@dataclass(frozen=True)
class TransferUnit:
    """One atomic piece of a class file on the wire.

    Attributes:
        kind: What the unit carries.
        class_name: Owning class.
        method: The method, for ``METHOD`` units.
        size: Bytes on the wire (delimiters included for methods).
    """

    kind: UnitKind
    class_name: str
    size: int
    method: Optional[MethodId] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise TransferError(f"negative unit size: {self}")
        if (self.kind == UnitKind.METHOD) != (self.method is not None):
            raise TransferError(
                f"method must be set exactly for METHOD units: {self}"
            )


@dataclass(frozen=True)
class ClassTransferPlan:
    """The in-order unit stream for one class file.

    Units always arrive in this order within the class — both parallel
    and interleaved transfer preserve intra-class order — so a method
    unit's arrival implies everything it needs from its own class has
    arrived too.
    """

    class_name: str
    policy: TransferPolicy
    units: Tuple[TransferUnit, ...]

    @property
    def total_bytes(self) -> int:
        return sum(unit.size for unit in self.units)

    def method_unit(self, method_name: str) -> TransferUnit:
        for unit in self.units:
            if (
                unit.kind == UnitKind.METHOD
                and unit.method is not None
                and unit.method.method_name == method_name
            ):
                return unit
        raise TransferError(
            f"no method unit {method_name!r} in plan for "
            f"{self.class_name!r}"
        )

    def required_unit_for(self, method_name: str) -> TransferUnit:
        """The unit whose arrival lets ``method_name`` begin executing.

        Strict: the whole class file.  Otherwise: the method's unit
        (its prerequisites precede it in the in-order stream).
        """
        if self.policy == TransferPolicy.STRICT:
            return self.units[0]
        return self.method_unit(method_name)

    def prefix_bytes_through(self, method_name: str) -> int:
        """Bytes from stream start through the method's unit."""
        if self.policy == TransferPolicy.STRICT:
            return self.total_bytes
        total = 0
        for unit in self.units:
            total += unit.size
            if (
                unit.kind == UnitKind.METHOD
                and unit.method is not None
                and unit.method.method_name == method_name
            ):
                return total
        raise TransferError(
            f"no method unit {method_name!r} in plan for "
            f"{self.class_name!r}"
        )


def build_class_plan(
    classfile,
    policy: TransferPolicy,
    block_delimiters: bool = False,
) -> ClassTransferPlan:
    """Decompose one class file according to ``policy``.

    Args:
        classfile: The class to decompose.
        policy: Unit granularity policy.
        block_delimiters: Granularity ablation (paper §4): place a
            delimiter after every *basic block* instead of one per
            method.  Execution still needs whole methods, so the finer
            delimiters are pure overhead — the paper's finding.
    """
    layout = class_layout(classfile)
    name = classfile.name
    units: List[TransferUnit] = []

    def delimiter_overhead(method_name: str) -> int:
        if not block_delimiters:
            return METHOD_DELIMITER_SIZE
        blocks, _ = partition_blocks(
            classfile.method(method_name).instructions
        )
        return METHOD_DELIMITER_SIZE * len(blocks)

    if policy == TransferPolicy.STRICT:
        units.append(
            TransferUnit(
                kind=UnitKind.CLASS_FILE,
                class_name=name,
                size=layout.strict_size,
            )
        )
    elif policy == TransferPolicy.NON_STRICT:
        units.append(
            TransferUnit(
                kind=UnitKind.GLOBAL_DATA,
                class_name=name,
                size=layout.global_size,
            )
        )
        for method_name, size in layout.method_sizes:
            units.append(
                TransferUnit(
                    kind=UnitKind.METHOD,
                    class_name=name,
                    size=size + delimiter_overhead(method_name),
                    method=MethodId(name, method_name),
                )
            )
    elif policy == TransferPolicy.DATA_PARTITIONED:
        partition: DataPartition = partition_class(classfile)
        # The needed-first chunk carries the fixed framing (everything
        # in the global section that is not a pool entry) plus the
        # setup-referenced pool entries; the rest of the pool rides
        # with its first-using method as GMDs, and unused entries
        # trail.  Total wire bytes equal the non-strict wire size.
        pool_entry_bytes = classfile.constant_pool.size - 2
        framing = layout.global_size - pool_entry_bytes
        units.append(
            TransferUnit(
                kind=UnitKind.GLOBAL_FIRST,
                class_name=name,
                size=framing + partition.setup_pool_bytes,
            )
        )
        gmd = dict(partition.gmd_sizes)
        for method_name, size in layout.method_sizes:
            units.append(
                TransferUnit(
                    kind=UnitKind.METHOD,
                    class_name=name,
                    size=(
                        size
                        + delimiter_overhead(method_name)
                        + gmd.get(method_name, 0)
                    ),
                    method=MethodId(name, method_name),
                )
            )
        if partition.unused_bytes:
            units.append(
                TransferUnit(
                    kind=UnitKind.GLOBAL_UNUSED,
                    class_name=name,
                    size=partition.unused_bytes,
                )
            )
    else:  # pragma: no cover - enum is closed
        raise TransferError(f"unknown policy {policy}")

    return ClassTransferPlan(
        class_name=name, policy=policy, units=tuple(units)
    )


def build_program_plans(
    program: Program,
    policy: TransferPolicy,
    block_delimiters: bool = False,
) -> Dict[str, ClassTransferPlan]:
    """Plans for every class of a program, keyed by class name."""
    return {
        classfile.name: build_class_plan(
            classfile, policy, block_delimiters=block_delimiters
        )
        for classfile in program.classes
    }
