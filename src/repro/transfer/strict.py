"""Strict sequential transfer: the paper's base case.

"Our base execution was a simulation in which the application
transferred one class to completion at a time and executed strictly:
methods execute only when the entire class file in which they are
contained has been transferred" (§7).  Classes move in program file
order over a single stream.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import TransferError
from ..program import MethodId, Program
from .base import TransferController
from .streams import StreamEngine
from .units import (
    ClassTransferPlan,
    TransferPolicy,
    TransferUnit,
    build_program_plans,
)

__all__ = ["StrictSequentialController"]


class StrictSequentialController(TransferController):
    """One stream, whole class files, program file order."""

    name = "strict"

    def __init__(self, program: Program) -> None:
        self.program = program
        self.plans: Dict[str, ClassTransferPlan] = build_program_plans(
            program, TransferPolicy.STRICT
        )
        self._class_order: List[str] = program.class_names

    def setup(self, engine: StreamEngine) -> None:
        units: List[TransferUnit] = []
        for class_name in self._class_order:
            units.extend(self.plans[class_name].units)
        if not units:
            raise TransferError("program has no classes to transfer")
        if self.recorder is not None:
            self.recorder.schedule_decision(
                engine.time,
                action="stream_start",
                target="strict-sequential",
                units=len(units),
            )
        engine.request_stream("strict-sequential", units)

    def required_unit(self, method_id: MethodId) -> TransferUnit:
        plan = self.plans.get(method_id.class_name)
        if plan is None:
            raise TransferError(
                f"no transfer plan for class {method_id.class_name!r}"
            )
        return plan.units[0]
