"""Processor-sharing stream engine.

Models the paper's transfer fabric: a fixed-bandwidth link over which up
to ``max_streams`` class files transfer simultaneously, splitting the
bandwidth equally (§5.1).  Streams are admitted on request; when all
slots are taken, later requests queue (a demand-fetched class caused by
a misprediction jumps to the *front* of the queue, §5.1).  A stream,
once started, transfers to completion — streams are never preempted.

Time is measured in CPU cycles.  The engine is event-driven and exact:
it advances from unit-completion to unit-completion (or to an external
wake-up), so no per-cycle stepping occurs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence

from collections import deque

from ..errors import TransferError
from .link import NetworkLink
from .units import TransferUnit

__all__ = ["Stream", "StreamEngine"]

_EPSILON = 1e-6


@dataclass
class Stream:
    """One in-order unit stream (usually: one class file).

    Attributes:
        name: Diagnostic label (class name, or "interleaved").
        units: Remaining units, front is currently transferring.
        delivered_bytes: Bytes of this stream delivered so far.
    """

    name: str
    units: Deque[TransferUnit]
    remaining_in_unit: float = 0.0
    delivered_bytes: float = 0.0
    started: bool = False

    def __post_init__(self) -> None:
        if self.units:
            self.remaining_in_unit = float(self.units[0].size)

    @property
    def done(self) -> bool:
        return not self.units

    @property
    def remaining_bytes(self) -> float:
        if not self.units:
            return 0.0
        later = sum(unit.size for unit in list(self.units)[1:])
        return self.remaining_in_unit + later


class StreamEngine:
    """Shares a link's bandwidth among active streams.

    Args:
        link: The link model (cycles per byte).
        max_streams: Concurrent stream limit; ``None`` = unlimited
            (the paper's "infinite" configuration).
    """

    def __init__(
        self, link: NetworkLink, max_streams: Optional[int] = None
    ) -> None:
        if max_streams is not None and max_streams < 1:
            raise TransferError(
                f"max_streams must be >= 1, got {max_streams}"
            )
        self.link = link
        self.max_streams = max_streams
        self.time = 0.0
        self.active: List[Stream] = []
        self.waiting: Deque[Stream] = deque()
        self.arrival_times: Dict[TransferUnit, float] = {}
        self._known_units: set = set()
        self.total_delivered = 0.0
        self.delivered_per_stream: Dict[str, float] = {}
        self.stream_start_times: Dict[str, float] = {}

    # -- admission --------------------------------------------------------

    def request_stream(
        self,
        name: str,
        units: Sequence[TransferUnit],
        front: bool = False,
    ) -> Stream:
        """Admit a stream; it activates now or queues for a slot.

        Args:
            name: Stream label.
            units: Units, delivered strictly in order.
            front: Jump the waiting queue (demand-fetch correction).
        """
        stream = Stream(name=name, units=deque(units))
        if stream.done:
            raise TransferError(f"stream {name!r} has no units")
        for unit in units:
            if unit in self._known_units:
                raise TransferError(
                    f"duplicate transfer unit in stream {name!r}: "
                    f"{unit} (units must be distinct values; the plan "
                    "builders guarantee this)"
                )
            self._known_units.add(unit)
        if self._has_slot():
            self._activate(stream)
        elif front:
            self.waiting.appendleft(stream)
        else:
            self.waiting.append(stream)
        return stream

    def promote(self, stream: Stream) -> None:
        """Move a waiting stream to the front of the queue."""
        if stream in self.waiting:
            self.waiting.remove(stream)
            self.waiting.appendleft(stream)

    def _has_slot(self) -> bool:
        return self.max_streams is None or len(self.active) < (
            self.max_streams
        )

    def _activate(self, stream: Stream) -> None:
        stream.started = True
        self.stream_start_times.setdefault(stream.name, self.time)
        self.active.append(stream)

    def _admit_waiting(self) -> None:
        while self.waiting and self._has_slot():
            self._activate(self.waiting.popleft())

    # -- queries ----------------------------------------------------------

    def arrived(self, unit: TransferUnit) -> bool:
        return unit in self.arrival_times

    def arrival_time(self, unit: TransferUnit) -> float:
        try:
            return self.arrival_times[unit]
        except KeyError as exc:
            raise TransferError(f"unit has not arrived: {unit}") from exc

    @property
    def idle(self) -> bool:
        return not self.active and not self.waiting

    @property
    def remaining_bytes(self) -> float:
        pending = sum(stream.remaining_bytes for stream in self.active)
        queued = sum(stream.remaining_bytes for stream in self.waiting)
        return pending + queued

    # -- time advancement -------------------------------------------------

    def _next_completion_dt(self) -> Optional[float]:
        """Cycles until the earliest current-unit completion."""
        if not self.active:
            return None
        share = len(self.active)
        min_remaining = min(
            stream.remaining_in_unit for stream in self.active
        )
        return min_remaining * self.link.cycles_per_byte * share

    def _deliver(self, dt: float) -> None:
        """Push ``dt`` cycles of bytes through the active streams."""
        if dt <= 0 or not self.active:
            return
        per_stream_bytes = (
            dt * self.link.bytes_per_cycle / len(self.active)
        )
        for stream in self.active:
            stream.remaining_in_unit -= per_stream_bytes
            stream.delivered_bytes += per_stream_bytes
            self.total_delivered += per_stream_bytes
            self.delivered_per_stream[stream.name] = (
                self.delivered_per_stream.get(stream.name, 0.0)
                + per_stream_bytes
            )

    def _complete_units(self) -> None:
        finished: List[Stream] = []
        for stream in self.active:
            while (
                stream.units
                and stream.remaining_in_unit <= _EPSILON
            ):
                unit = stream.units.popleft()
                self.arrival_times[unit] = self.time
                if stream.units:
                    # Carry sub-epsilon residue into the next unit.
                    stream.remaining_in_unit += float(
                        stream.units[0].size
                    )
                else:
                    stream.remaining_in_unit = 0.0
                    finished.append(stream)
        for stream in finished:
            self.active.remove(stream)
        if finished:
            self._admit_waiting()

    def _step(
        self,
        step_to: float,
        on_advance: Optional[Callable[["StreamEngine"], None]],
    ) -> None:
        """Advance to ``step_to``, delivering bytes and completing units.

        If float resolution at large times swallows the step (``step_to``
        rounds to the current time), the nearest completion is snapped to
        done so the simulation always makes progress.
        """
        if step_to <= self.time and self.active:
            min_remaining = min(
                stream.remaining_in_unit for stream in self.active
            )
            for stream in self.active:
                if stream.remaining_in_unit <= min_remaining:
                    stream.delivered_bytes += stream.remaining_in_unit
                    self.total_delivered += stream.remaining_in_unit
                    self.delivered_per_stream[stream.name] = (
                        self.delivered_per_stream.get(stream.name, 0.0)
                        + stream.remaining_in_unit
                    )
                    stream.remaining_in_unit = 0.0
        else:
            self._deliver(step_to - self.time)
            self.time = max(self.time, step_to)
        self._complete_units()
        if on_advance is not None:
            on_advance(self)

    def _bounded_step_target(
        self,
        limit: float,
        wakeup: Optional[Callable[["StreamEngine"], Optional[float]]],
    ) -> float:
        step_to = limit
        completion_dt = self._next_completion_dt()
        if completion_dt is not None:
            step_to = min(step_to, self.time + completion_dt)
        if wakeup is not None:
            wake_time = wakeup(self)
            if (
                wake_time is not None
                and self.time + _EPSILON < wake_time < step_to
            ):
                step_to = wake_time
        return step_to

    def next_event_dt(self) -> Optional[float]:
        """Cycles until this engine's earliest unit completion, if any.

        Public counterpart of the internal completion query, used by
        multi-link facades (:mod:`repro.sched`) that advance several
        engines in lockstep to the globally earliest event boundary.
        """
        return self._next_completion_dt()

    def advance(
        self,
        step_to: float,
        on_advance: Optional[Callable[["StreamEngine"], None]] = None,
    ) -> None:
        """Take exactly one bounded step to ``step_to``.

        ``step_to`` must not lie beyond this engine's next completion
        boundary (callers computing a global minimum over several
        engines guarantee this).  A ``step_to`` at or before the
        current time snaps the nearest completion to done, exactly as
        :meth:`run_until` does when float resolution swallows a step.
        """
        self._step(step_to, on_advance)

    def run_until(
        self,
        target_time: float,
        wakeup: Optional[Callable[["StreamEngine"], Optional[float]]] = None,
        on_advance: Optional[Callable[["StreamEngine"], None]] = None,
    ) -> None:
        """Advance the engine to ``target_time``.

        Args:
            target_time: Absolute time (cycles) to stop at.
            wakeup: Optional callback returning the next absolute time
                an external controller needs control (or None).
            on_advance: Optional callback invoked after every internal
                event boundary; it may admit new streams.
        """
        if target_time < self.time - _EPSILON:
            raise TransferError(
                f"cannot run backwards: {target_time} < {self.time}"
            )
        while self.time < target_time:
            step_to = self._bounded_step_target(target_time, wakeup)
            self._step(step_to, on_advance)

    def run_until_unit(
        self,
        unit: TransferUnit,
        wakeup: Optional[Callable[["StreamEngine"], Optional[float]]] = None,
        on_advance: Optional[Callable[["StreamEngine"], None]] = None,
    ) -> float:
        """Advance until ``unit`` arrives; return its arrival time.

        Raises:
            TransferError: If the engine goes idle first (the unit was
                never requested — a scheduling bug).
        """
        while not self.arrived(unit):
            if not self.active:
                wake_time = wakeup(self) if wakeup is not None else None
                if wake_time is not None and wake_time > self.time:
                    self.time = wake_time
                    self._complete_units()
                    if on_advance is not None:
                        on_advance(self)
                    continue
                raise TransferError(
                    f"engine idle but unit never arrived: {unit}"
                )
            completion_dt = self._next_completion_dt()
            step_to = self._bounded_step_target(
                self.time + completion_dt, wakeup
            )
            self._step(step_to, on_advance)
        return self.arrival_times[unit]
