"""Controller interface shared by the transfer methodologies.

A controller owns the mapping from methods to the transfer units whose
arrival they require, decides when streams are requested from the
:class:`~repro.transfer.streams.StreamEngine`, and reacts to execution
stalls (mispredictions).  The co-simulator drives it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..program import MethodId
from .streams import StreamEngine
from .units import TransferUnit

if TYPE_CHECKING:  # pragma: no cover
    from ..observe import TraceRecorder
    from .link import NetworkLink

__all__ = ["TransferController"]


class TransferController:
    """Base controller: subclasses implement one transfer methodology."""

    #: Human-readable name used in reports.
    name = "abstract"

    #: Concurrent-stream limit the engine should enforce (None = no
    #: limit); only the parallel methodology uses more than one stream.
    max_streams: Optional[int] = None

    #: Optional :class:`repro.observe.TraceRecorder` the simulator
    #: attaches before ``setup``; controllers emit their
    #: ``schedule_decision`` / ``demand_fetch`` events into it.
    recorder: Optional["TraceRecorder"] = None

    def build_engine(self, link: "NetworkLink") -> StreamEngine:
        """Build the transfer engine this controller drives.

        The default is the single-link processor-sharing
        :class:`StreamEngine`; multi-link controllers (see
        :mod:`repro.sched`) override this to supply their own
        engine implementing the same simulator-facing protocol.
        """
        return StreamEngine(link, max_streams=self.max_streams)

    def setup(self, engine: StreamEngine) -> None:
        """Request initial streams; called once at simulation start."""
        raise NotImplementedError

    def required_unit(self, method_id: MethodId) -> TransferUnit:
        """The unit whose arrival allows ``method_id`` to execute."""
        raise NotImplementedError

    def next_wakeup(self, engine: StreamEngine) -> Optional[float]:
        """Next absolute time this controller needs control, if any."""
        return None

    def on_advance(self, engine: StreamEngine) -> None:
        """Engine advanced past an event boundary; may admit streams."""

    def on_stall(self, engine: StreamEngine, method_id: MethodId) -> None:
        """Execution stalled waiting for ``method_id``.

        Mispredicting controllers use this for demand-fetch correction;
        single-stream controllers need do nothing (the unit is already
        en route).
        """
