"""Wire compression: the paper's complementary technique (§2.1).

The paper frames compression (BRISC, slim binaries, gzip) as *latency
avoidance*, complementary to non-strict execution's *latency
tolerance*: "our methods will benefit from compression, just as the
positive effects of these compression techniques can be enhanced by
reorganization, restructuring, and non-strict execution."

This extension measures real per-class compression ratios (zlib over
the actual serialized wire image) and scales transfer plans by them, so
the combination of both techniques can be simulated.
"""

from __future__ import annotations

import zlib
from typing import Dict

from ..classfile import serialize
from ..program import Program
from ..reorder import FirstUseOrder
from .interleaved import InterleavedController, build_interleaved_file
from .units import ClassTransferPlan, TransferUnit

__all__ = [
    "class_compression_ratio",
    "program_compression_ratios",
    "compress_plan",
    "compress_plans",
    "CompressedInterleavedController",
]


def class_compression_ratio(classfile, level: int = 6) -> float:
    """zlib compressed/uncompressed ratio of a class's wire image.

    A ratio of 0.4 means the class compresses to 40 % of its size —
    in line with the paper's note that gzip shrinks code 2–3×.
    """
    image = serialize(classfile)
    if not image:
        return 1.0
    compressed = zlib.compress(image, level)
    return min(1.0, len(compressed) / len(image))


def program_compression_ratios(
    program: Program, level: int = 6
) -> Dict[str, float]:
    """Per-class compression ratios for a whole program."""
    return {
        classfile.name: class_compression_ratio(classfile, level)
        for classfile in program.classes
    }


def _scaled(unit: TransferUnit, ratio: float) -> TransferUnit:
    return TransferUnit(
        kind=unit.kind,
        class_name=unit.class_name,
        size=max(1, round(unit.size * ratio)),
        method=unit.method,
    )


def compress_plan(
    plan: ClassTransferPlan, ratio: float
) -> ClassTransferPlan:
    """A plan whose unit sizes are scaled by ``ratio``.

    Models compressing each transfer unit independently (so units stay
    individually decodable on arrival, as non-strict execution
    requires); per-unit overhead is conservatively ignored.
    """
    if not 0 < ratio <= 1.0:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    return ClassTransferPlan(
        class_name=plan.class_name,
        policy=plan.policy,
        units=tuple(_scaled(unit, ratio) for unit in plan.units),
    )


def compress_plans(
    plans: Dict[str, ClassTransferPlan],
    ratios: Dict[str, float],
) -> Dict[str, ClassTransferPlan]:
    """Apply per-class ratios to a set of plans."""
    return {
        name: compress_plan(plan, ratios.get(name, 1.0))
        for name, plan in plans.items()
    }


class CompressedInterleavedController(InterleavedController):
    """Interleaved transfer of per-unit-compressed class files.

    Combines the paper's two latency attacks: restructured non-strict
    transfer (tolerance) over compressed units (avoidance).
    """

    name = "interleaved+zlib"

    def __init__(
        self,
        program: Program,
        order: FirstUseOrder,
        ratios: Dict[str, float] = None,
        level: int = 6,
        **kwargs,
    ) -> None:
        super().__init__(program, order, **kwargs)
        if ratios is None:
            ratios = program_compression_ratios(program, level)
        self.ratios = ratios
        self.plans = compress_plans(self.plans, ratios)
        self.sequence = build_interleaved_file(self.plans, order)
