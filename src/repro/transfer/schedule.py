"""The greedy parallel-transfer schedule (paper §5.1, Figure 4).

The schedule decides *when each class file starts transferring*: "a new
class begins transfer once the predicted number of bytes from all
classes that the new class is dependent on have transferred".  The
trigger is **byte-based, not clock-based** — it is self-clocking
against actual transfer progress, which is what makes it robust to
execution speed:

* class ``c``'s **dependencies** are the classes that execute before
  ``c``'s first method (everything earlier in the first-use order);
* the **unique bytes** of those dependencies are the first-use order's
  ``bytes_before`` — accumulated static procedure sizes for a static
  order, measured executed unique bytes for a profile order (§5.1's two
  variants);
* ``c`` is requested once total delivered bytes reach that figure,
  *less ``c``'s own required prefix* (global data plus everything up to
  its first-used method), so the prefix can land just in time
  (Figure 4: dependency-heavy class B starts before class A, which
  executes first).

Classes predicted to be needed only after most of the program has
executed therefore start late — and if execution finishes first, never:
their transfer is terminated with the rest.  Mispredictions are
corrected at simulation time by demand fetching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import TransferError
from ..program import MethodId, Program
from ..reorder import FirstUseOrder
from .link import NetworkLink
from .units import ClassTransferPlan

__all__ = ["ScheduledStart", "TransferSchedule", "build_schedule"]


@dataclass(frozen=True)
class ScheduledStart:
    """One class's planned transfer start.

    Attributes:
        class_name: The class.
        start_after_bytes: Total delivered bytes after which the class
            should begin transferring (0 = immediately).
        dependency_bytes: Predicted unique bytes of the classes this
            class depends on (its deadline, in byte-progress space).
        required_prefix_bytes: Stream bytes that must arrive before the
            class's first-used method can run.
        dependency_classes: The classes whose delivered bytes count
            toward the trigger (everything first-used earlier).
    """

    class_name: str
    start_after_bytes: float
    dependency_bytes: float
    required_prefix_bytes: int
    dependency_classes: Tuple[str, ...] = ()


@dataclass
class TransferSchedule:
    """Planned start thresholds for every class."""

    starts: List[ScheduledStart]

    def __post_init__(self) -> None:
        self._by_class = {
            start.class_name: start for start in self.starts
        }

    def start_for(self, class_name: str) -> ScheduledStart:
        try:
            return self._by_class[class_name]
        except KeyError as exc:
            raise TransferError(
                f"no scheduled start for class {class_name!r}"
            ) from exc

    def in_start_order(self) -> List[ScheduledStart]:
        return sorted(
            self.starts,
            key=lambda s: (s.start_after_bytes, s.dependency_bytes),
        )


def build_schedule(
    program: Program,
    plans: Dict[str, ClassTransferPlan],
    order: FirstUseOrder,
    link: Optional[NetworkLink] = None,
    cpi: Optional[float] = None,
) -> TransferSchedule:
    """Build the greedy byte-triggered schedule for a program.

    Args:
        program: The (restructured) program.
        plans: Per-class transfer plans.
        order: First-use order providing dependencies and unique bytes.
        link: Unused; kept so callers can pass their link for future
            clock-based variants.
        cpi: Unused; see ``link``.
    """
    first_method_of_class: Dict[str, MethodId] = {}
    class_first_use_order: List[str] = []
    # Predicted bytes delivered *from dependency classes* by the time
    # each class is first needed: walk the first-use order maintaining
    # each already-started class's delivered prefix (its stream through
    # its most recent first-used method); a class's dependency bytes
    # are the sum of those prefixes at its own first use.
    dependency_bytes_of: Dict[str, float] = {}
    running_prefix: Dict[str, int] = {}
    running_total = 0.0
    for method_id in order.order:
        plan = plans.get(method_id.class_name)
        if plan is None:
            raise TransferError(
                f"no transfer plan for class {method_id.class_name!r}"
            )
        if method_id.class_name not in first_method_of_class:
            first_method_of_class[method_id.class_name] = method_id
            class_first_use_order.append(method_id.class_name)
            dependency_bytes_of[method_id.class_name] = running_total
        previous = running_prefix.get(method_id.class_name, 0)
        current = plan.prefix_bytes_through(method_id.method_name)
        if current > previous:
            running_prefix[method_id.class_name] = current
            running_total += current - previous

    starts: List[ScheduledStart] = []
    for classfile in program.classes:
        plan = plans.get(classfile.name)
        if plan is None:
            raise TransferError(
                f"no transfer plan for class {classfile.name!r}"
            )
        first_method = first_method_of_class.get(classfile.name)
        if first_method is None:
            # No method of this class is in the order: ship it last.
            dependency_bytes = running_total
            required = plan.total_bytes
            dependencies = tuple(class_first_use_order)
        else:
            dependency_bytes = dependency_bytes_of[classfile.name]
            required = plan.prefix_bytes_through(
                first_method.method_name
            )
            position = class_first_use_order.index(classfile.name)
            dependencies = tuple(class_first_use_order[:position])
        starts.append(
            ScheduledStart(
                class_name=classfile.name,
                start_after_bytes=max(
                    0.0, dependency_bytes - required
                ),
                dependency_bytes=dependency_bytes,
                required_prefix_bytes=required,
                dependency_classes=dependencies,
            )
        )
    return TransferSchedule(starts=starts)
