"""Transfer engine: links, units, streams, and methodologies."""

from .base import TransferController
from .compression import (
    CompressedInterleavedController,
    class_compression_ratio,
    compress_plan,
    compress_plans,
    program_compression_ratios,
)
from .interleaved import InterleavedController, build_interleaved_file
from .link import (
    CPU_HZ,
    MODEM_LINK,
    T1_LINK,
    LossyLink,
    NetworkLink,
    link_from_bandwidth,
    links_from_bandwidths,
    lossy_link,
)
from .parallel import ParallelController
from .schedule import ScheduledStart, TransferSchedule, build_schedule
from .streams import Stream, StreamEngine
from .strict import StrictSequentialController
from .units import (
    ClassTransferPlan,
    TransferPolicy,
    TransferUnit,
    UnitKind,
    build_class_plan,
    build_program_plans,
)

__all__ = [
    "TransferController",
    "CompressedInterleavedController",
    "class_compression_ratio",
    "compress_plan",
    "compress_plans",
    "program_compression_ratios",
    "InterleavedController",
    "build_interleaved_file",
    "CPU_HZ",
    "MODEM_LINK",
    "T1_LINK",
    "LossyLink",
    "NetworkLink",
    "link_from_bandwidth",
    "links_from_bandwidths",
    "lossy_link",
    "ParallelController",
    "ScheduledStart",
    "TransferSchedule",
    "build_schedule",
    "Stream",
    "StreamEngine",
    "StrictSequentialController",
    "ClassTransferPlan",
    "TransferPolicy",
    "TransferUnit",
    "UnitKind",
    "build_class_plan",
    "build_program_plans",
]
