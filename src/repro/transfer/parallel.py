"""Parallel file transfer (paper §5.1, Figure 4).

Multiple class files transfer simultaneously, splitting the fixed
bandwidth equally, subject to a concurrent-stream limit (1, 2, 4 —
HTTP/1.1 pipelining — or unlimited).  A greedy schedule starts each
class so its first-use prefix lands before its predicted first use.
If the prediction is wrong — a method is invoked whose class is neither
transferred nor transferring — the class is demand-fetched immediately
when a slot is free, or jumps to the front of the queue otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import TransferError
from ..program import MethodId, Program
from ..reorder import FirstUseOrder
from .base import TransferController
from .link import NetworkLink
from .schedule import TransferSchedule, build_schedule
from .streams import Stream, StreamEngine
from .units import (
    ClassTransferPlan,
    TransferPolicy,
    TransferUnit,
    build_program_plans,
)

__all__ = ["ParallelController"]


class ParallelController(TransferController):
    """Scheduled multi-stream transfer with demand-fetch correction."""

    name = "parallel"

    def __init__(
        self,
        program: Program,
        order: FirstUseOrder,
        link: NetworkLink,
        cpi: float,
        max_streams: Optional[int] = None,
        data_partitioning: bool = False,
        eager_start: bool = False,
    ) -> None:
        policy = (
            TransferPolicy.DATA_PARTITIONED
            if data_partitioning
            else TransferPolicy.NON_STRICT
        )
        self.program = program
        self.order = order
        self.max_streams = max_streams
        self.plans: Dict[str, ClassTransferPlan] = build_program_plans(
            program, policy
        )
        self.schedule: TransferSchedule = build_schedule(
            program, self.plans, order, link, cpi
        )
        self.eager_start = eager_start
        self._pending = self.schedule.in_start_order()
        self._streams: Dict[str, Stream] = {}
        self.demand_fetches: List[MethodId] = []

    # -- controller interface -------------------------------------------

    def setup(self, engine: StreamEngine) -> None:
        self._release_due(engine)

    def required_unit(self, method_id: MethodId) -> TransferUnit:
        plan = self.plans.get(method_id.class_name)
        if plan is None:
            raise TransferError(
                f"no transfer plan for class {method_id.class_name!r}"
            )
        return plan.method_unit(method_id.method_name)

    def next_wakeup(self, engine: StreamEngine) -> Optional[float]:
        # Start triggers are byte-based; unit-completion boundaries are
        # the only byte-progress events, and on_advance fires at each,
        # so no clock wake-ups are needed.
        return None

    def on_advance(self, engine: StreamEngine) -> None:
        self._release_due(engine)

    def on_stall(self, engine: StreamEngine, method_id: MethodId) -> None:
        """Demand-fetch correction for a mispredicted first use."""
        class_name = method_id.class_name
        stream = self._streams.get(class_name)
        if stream is None:
            # Not yet requested: request it now, at the queue front.
            self.demand_fetches.append(method_id)
            self._demand_event(engine, method_id)
            self._request(engine, class_name, front=True)
        elif not stream.started and not stream.done:
            # Waiting for a slot: it transfers next.
            self.demand_fetches.append(method_id)
            self._demand_event(engine, method_id)
            engine.promote(stream)
            if self.recorder is not None:
                self.recorder.schedule_decision(
                    engine.time,
                    action="promote",
                    target=class_name,
                    reason="demand_fetch",
                )

    def _demand_event(
        self, engine: StreamEngine, method_id: MethodId
    ) -> None:
        if self.recorder is not None:
            self.recorder.demand_fetch(
                engine.time, method=str(method_id)
            )

    # -- internals ---------------------------------------------------------

    def _release_due(self, engine: StreamEngine) -> None:
        due = []
        for start in self._pending:
            if self.eager_start:
                # Ablation: no schedule — every class is requested up
                # front, in first-use order.
                due.append(start)
                continue
            delivered = sum(
                engine.delivered_per_stream.get(dependency, 0.0)
                for dependency in start.dependency_classes
            )
            if start.start_after_bytes <= delivered + 1e-9:
                due.append(start)
        for start in due:
            self._request(engine, start.class_name)

    def _request(
        self, engine: StreamEngine, class_name: str, front: bool = False
    ) -> None:
        if class_name in self._streams:
            return
        self._pending = [
            start
            for start in self._pending
            if start.class_name != class_name
        ]
        plan = self.plans[class_name]
        if self.recorder is not None:
            start = self.schedule.start_for(class_name)
            self.recorder.schedule_decision(
                engine.time,
                action="demand_start" if front else "stream_start",
                target=class_name,
                start_after_bytes=start.start_after_bytes,
                required_prefix_bytes=start.required_prefix_bytes,
            )
        self._streams[class_name] = engine.request_stream(
            class_name, plan.units, front=front
        )
