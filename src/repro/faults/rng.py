"""Deterministic derivation of independent per-scope RNG streams.

Chaos replays must be deterministic, but *independent* across scopes:
when several links (or several connections of one load sweep) share a
literal ``random.Random(seed)``, they draw the same jitter sequence in
lockstep — correlated backoff turns one outage into a thundering herd,
and the replay of link 2 changes whenever link 1 consumes a draw.

:func:`derive_rng` folds a seed and any number of scope components
(link index, connection id, purpose tag) through SHA-256 into a fresh
:class:`random.Random`, so each ``(seed, scope)`` pair names its own
reproducible stream no matter how the other scopes interleave.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

__all__ = ["derive_rng", "derive_seed"]

ScopePart = Union[int, str]


def derive_seed(seed: int, *scope: ScopePart) -> int:
    """A stable 64-bit seed for ``(seed, scope...)``.

    Components are length-prefixed before hashing so ``("ab", "c")``
    and ``("a", "bc")`` derive different streams.
    """
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode("ascii"))
    for part in scope:
        token = str(part).encode("utf-8")
        digest.update(b"|%d:" % len(token))
        digest.update(token)
    return int.from_bytes(digest.digest()[:8], "big")


def derive_rng(seed: int, *scope: ScopePart) -> random.Random:
    """An independent seeded RNG for one scope.

    Same ``(seed, scope...)`` ⇒ the identical stream every run;
    different scopes ⇒ streams that stay uncorrelated regardless of
    how many draws the other scopes make.
    """
    return random.Random(derive_seed(seed, *scope))
