"""Turns a :class:`~repro.faults.plan.FaultPlan` into per-frame directives.

The server asks its connection's :class:`ConnectionFaults` for one
:class:`FrameDirective` per outgoing frame; the directive says exactly
what to do with those wire bytes (delay them, drop them, flip a byte,
send twice, or sever the connection partway through).  All randomness
comes from one RNG seeded by ``(plan.seed, connection index)``, so a
fixed plan replays the same directive stream every run.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field
from typing import Optional, Set, Tuple

from .plan import FaultPlan

__all__ = [
    "InjectedFault",
    "FrameDirective",
    "ConnectionFaults",
    "FaultInjector",
]

#: Wire-frame header size.  Mirrors ``repro.netserve.protocol._HEADER``
#: (magic u16, version u8, kind u8, body length u32) — importing it
#: would make faults depend on netserve, which depends back on faults.
#: Corruption offsets start past the header so a flipped byte fails the
#: CRC instead of destroying the framing.
_HEADER_BYTES = struct.Struct(">HBBI").size


@dataclass(frozen=True)
class InjectedFault:
    """One fault the injector decided to apply.

    Attributes:
        kind: ``"cut"``, ``"corrupt"``, ``"drop"``, ``"duplicate"``,
            or ``"stall"``.
        detail: Fault-specific number — byte offset for cuts, frame
            index for corrupt/drop/duplicate, seconds for stalls.
    """

    kind: str
    detail: float


@dataclass(frozen=True)
class FrameDirective:
    """What to do with one outgoing frame's bytes.

    Attributes:
        frame_index: Post-negotiation frame counter (0-based).
        delay_seconds: Sleep this long before touching the socket.
        drop: Discard the frame without sending anything.
        corrupt_offset: Flip the byte at this offset before sending.
        copies: How many times to send the frame (2 = duplicate).
        cut_at: Sever the connection after sending this many bytes of
            the frame (0 = send nothing, then sever).
        faults: The faults this directive embodies, for events/stats.
    """

    frame_index: int
    delay_seconds: float = 0.0
    drop: bool = False
    corrupt_offset: Optional[int] = None
    copies: int = 1
    cut_at: Optional[int] = None
    faults: Tuple[InjectedFault, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.faults and self.delay_seconds == 0.0


@dataclass
class ConnectionFaults:
    """Per-connection fault state: one plan instantiated for one socket."""

    plan: FaultPlan
    index: int
    _rng: random.Random = field(init=False, repr=False)
    _frame_index: int = field(init=False, default=0)
    _bytes_sent: int = field(init=False, default=0)
    _cut_bytes: Optional[int] = field(init=False, default=None)
    _cut_frame: Optional[int] = field(init=False, default=None)
    _corrupt: Set[int] = field(init=False, default_factory=set)
    _drop: Set[int] = field(init=False, default_factory=set)
    _duplicate: Set[int] = field(init=False, default_factory=set)

    def __post_init__(self) -> None:
        plan = self.plan
        self._rng = random.Random(plan.seed * 1_000_003 + self.index)
        if self.index < len(plan.cut_after_bytes):
            self._cut_bytes = plan.cut_after_bytes[self.index]
        if self.index < len(plan.cut_after_frames):
            self._cut_frame = plan.cut_after_frames[self.index]
        self._corrupt = set(plan.corrupt_frames)
        self._drop = set(plan.drop_frames)
        self._duplicate = set(plan.duplicate_frames)

    def _corrupt_offset(self, frame_length: int) -> Optional[int]:
        """A seeded offset inside the frame's body+CRC region."""
        if frame_length <= _HEADER_BYTES:
            return None
        return self._rng.randrange(_HEADER_BYTES, frame_length)

    def next_directive(self, frame_length: int) -> FrameDirective:
        """Decide the fate of the next ``frame_length``-byte frame."""
        plan = self.plan
        index = self._frame_index
        self._frame_index += 1
        faults = []
        delay = 0.0
        if plan.stall_before_frame == index and plan.stall_seconds > 0:
            delay += plan.stall_seconds
            faults.append(InjectedFault("stall", plan.stall_seconds))
        if plan.jitter_seconds > 0:
            delay += self._rng.uniform(0.0, plan.jitter_seconds)

        cut_at: Optional[int] = None
        if self._cut_frame is not None and index >= self._cut_frame:
            cut_at = 0
            faults.append(InjectedFault("cut", self._bytes_sent))
        elif (
            self._cut_bytes is not None
            and self._bytes_sent + frame_length > self._cut_bytes
        ):
            cut_at = self._cut_bytes - self._bytes_sent
            faults.append(InjectedFault("cut", self._cut_bytes))

        drop = False
        corrupt_offset: Optional[int] = None
        copies = 1
        if cut_at is None:
            if index in self._drop or (
                plan.drop_probability > 0
                and self._rng.random() < plan.drop_probability
            ):
                self._drop.discard(index)
                drop = True
                faults.append(InjectedFault("drop", index))
            elif index in self._corrupt:
                self._corrupt.discard(index)
                corrupt_offset = self._corrupt_offset(frame_length)
                if corrupt_offset is not None:
                    faults.append(InjectedFault("corrupt", index))
            elif index in self._duplicate:
                self._duplicate.discard(index)
                copies = 2
                faults.append(InjectedFault("duplicate", index))
            if not drop:
                self._bytes_sent += frame_length * copies

        return FrameDirective(
            frame_index=index,
            delay_seconds=delay,
            drop=drop,
            corrupt_offset=corrupt_offset,
            copies=copies,
            cut_at=cut_at,
            faults=tuple(faults),
        )


class FaultInjector:
    """Hands out per-connection fault state for one server.

    Connections are numbered in accept order; that number picks the
    connection's cut point (if any) and seeds its RNG, so the whole
    server-side fault sequence is a pure function of the plan.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._connections = 0

    @property
    def connections_seen(self) -> int:
        return self._connections

    def connection(self) -> ConnectionFaults:
        """Fault state for the next accepted connection."""
        index = self._connections
        self._connections += 1
        return ConnectionFaults(plan=self.plan, index=index)
