"""repro.faults — deterministic seeded fault injection.

The paper's premise is that mobile-code links are slow *and
unreliable*; this package makes the unreliability reproducible.  A
:class:`FaultPlan` is a pure-literal, seeded script of link
misbehaviour (cuts, corruption, drops, duplicates, stalls, jitter)
that plugs into :class:`repro.netserve.ClassFileServer`; the matching
lossy-link model for the cycle-exact simulator lives in
:func:`repro.transfer.lossy_link`.  The resilient client that survives
every injectable fault is :class:`repro.netserve.ResilientFetcher`.
"""

from .injector import (
    ConnectionFaults,
    FaultInjector,
    FrameDirective,
    InjectedFault,
)
from .plan import FaultPlan
from .rng import derive_rng, derive_seed

__all__ = [
    "ConnectionFaults",
    "FaultInjector",
    "FaultPlan",
    "FrameDirective",
    "InjectedFault",
    "derive_rng",
    "derive_seed",
]
