"""Declarative, seeded fault-injection plans.

A :class:`FaultPlan` is a *pure-literal* specification of how a link
should misbehave: which connections get cut and where, which frames get
corrupted, dropped, or duplicated, how much jitter and stall to add.
Because it is a frozen value object with an explicit ``seed``, the same
plan always produces the same fault sequence — chaos tests are exactly
as reproducible as clean ones.

Index-based fields (``corrupt_frames``, ``drop_frames``,
``duplicate_frames``, ``stall_before_frame``) count frames sent after
session negotiation, per connection, starting at 0 (the EOF frame is a
frame like any other).  ``cut_after_bytes`` / ``cut_after_frames`` are
consumed one entry per connection in accept order: entry ``i`` cuts the
server's ``i``-th connection, and connections beyond the list run
clean — which is what lets a resumed or degraded session complete.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import FaultPlanError

__all__ = ["FaultPlan"]


def _as_int_tuple(name: str, value: Any) -> Tuple[int, ...]:
    try:
        items = tuple(int(item) for item in value)
    except (TypeError, ValueError) as exc:
        raise FaultPlanError(
            f"{name} must be a sequence of integers, got {value!r}"
        ) from exc
    for item in items:
        if item < 0:
            raise FaultPlanError(f"{name} entries must be >= 0: {item}")
    return items


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic misbehaviour script for a server's link.

    Attributes:
        seed: Seeds every probabilistic choice (jitter, drop lottery,
            corruption offsets).  Identical seed ⇒ identical faults.
        cut_after_bytes: Per-connection wire-byte offsets (post
            negotiation) at which the connection is severed; entry
            ``i`` applies to connection ``i``, later connections run
            clean.
        cut_after_frames: Per-connection frame counts after which the
            connection is severed (same consumption rule).
        corrupt_frames: Frame indices whose body gets one byte flipped
            (each index fires once per connection).
        drop_frames: Frame indices silently discarded.
        duplicate_frames: Frame indices sent twice.
        drop_probability: Independent per-frame drop chance in
            ``[0, 1)``, drawn from the seeded RNG — the netserve twin
            of the simulator's lossy-link sweep.
        jitter_seconds: Upper bound on uniform per-frame extra latency.
        stall_before_frame: Frame index before which the sender stalls.
        stall_seconds: Length of that stall (a frozen token bucket).
    """

    seed: int = 0
    cut_after_bytes: Tuple[int, ...] = ()
    cut_after_frames: Tuple[int, ...] = ()
    corrupt_frames: Tuple[int, ...] = ()
    drop_frames: Tuple[int, ...] = ()
    duplicate_frames: Tuple[int, ...] = ()
    drop_probability: float = 0.0
    jitter_seconds: float = 0.0
    stall_before_frame: Optional[int] = None
    stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "cut_after_bytes",
            "cut_after_frames",
            "corrupt_frames",
            "drop_frames",
            "duplicate_frames",
        ):
            object.__setattr__(
                self, name, _as_int_tuple(name, getattr(self, name))
            )
        if not 0.0 <= self.drop_probability < 1.0:
            raise FaultPlanError(
                f"drop_probability must be in [0, 1): "
                f"{self.drop_probability}"
            )
        if self.jitter_seconds < 0:
            raise FaultPlanError(
                f"jitter_seconds must be >= 0: {self.jitter_seconds}"
            )
        if self.stall_seconds < 0:
            raise FaultPlanError(
                f"stall_seconds must be >= 0: {self.stall_seconds}"
            )
        if self.stall_before_frame is not None and (
            self.stall_before_frame < 0
        ):
            raise FaultPlanError(
                f"stall_before_frame must be >= 0: "
                f"{self.stall_before_frame}"
            )
        if self.stall_before_frame is not None and not self.stall_seconds:
            raise FaultPlanError(
                "stall_before_frame is set but stall_seconds is 0"
            )

    @property
    def is_noop(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (
            self.cut_after_bytes
            or self.cut_after_frames
            or self.corrupt_frames
            or self.drop_frames
            or self.duplicate_frames
            or self.drop_probability
            or self.jitter_seconds
            or self.stall_before_frame is not None
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (tuples become lists)."""
        out: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            out[spec.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from a JSON-decoded mapping (e.g. a CLI arg)."""
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan fields {unknown}; known: "
                f"{sorted(known)}"
            )
        return cls(**dict(data))
