"""The lint framework: typed rules over a whole program + transfer plan.

A :class:`LintRule` inspects one shared :class:`LintContext` — the
per-method dataflow results and per-methodology transfer-plan reports
are computed once, rules only read them — and yields
:class:`Finding`\\ s.  Rules register themselves in a module registry
so the CLI, the exporters, and the tests all see the same rule set.

Built-in rules:

``type-error`` (error)
    The typed dataflow engine rejected a method body: definite type
    mismatch, stack underflow/overflow, inconsistent join depths,
    malformed structure.  These methods *will* fault on some path.
``schedule-deadlock`` (error)
    A class's parallel start trigger can never fire; every use of the
    class demand-fetches.
``guaranteed-mispredict`` (warning)
    The first-use prediction is provably wrong for this method: the
    parallel schedule cannot have requested its class when the method
    is first invoked, so a demand-fetch round trip is certain.
``dead-method`` (warning)
    Unreachable from the entry point through the call graph — a
    tail-placement or elision candidate (it still costs wire bytes).
``proven-stall`` (note)
    A non-entry method whose transfer unit provably arrives after its
    first use: the restructuring misses the paper's overlap goal here.
``dead-method-shipped`` (warning)
    The interprocedural RTA pass (:mod:`repro.analyze.interproc`)
    proves the method unreachable, yet the transfer order ships its
    bytes ahead of live methods — every later first use pays for them.
``guaranteed-mispredict-order`` (warning)
    The transfer order places a method before one of its call-graph
    dominators; every call chain reaching it runs the dominator first,
    so this relative order is inverted for *every* input.
``unreachable-call-target`` (error)
    A feasible call site names a method its internal callee class does
    not define — a torn reference that faults under strict linking.

Analyzer cost and finding counts are published through an optional
:class:`repro.observe.MetricsRegistry` (``analyze_runtime_seconds``,
``analyze_findings_total``, ``analyze_methods``) and each finding can
be emitted as an ``analysis_finding`` event on a
:class:`repro.observe.TraceRecorder`.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple, Type

from ..errors import AnalysisError
from ..program import MethodId, Program
from ..reorder import FirstUseOrder, estimate_first_use
from ..transfer import NetworkLink
from ..vm import ExecutionTrace
from .dataflow import MethodDataflow, analyze_method
from .interproc import InterprocAnalysis, analyze_interproc
from .transferplan import (
    StallVerdict,
    TransferPlanReport,
    analyze_transfer_plan,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..observe import MetricsRegistry, TraceRecorder

__all__ = [
    "Severity",
    "Span",
    "Finding",
    "LintRule",
    "LintContext",
    "LintReport",
    "register_rule",
    "all_rules",
    "run_lint",
]


class Severity(enum.Enum):
    """Finding severity, ordered; maps onto SARIF levels."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.value


@dataclass(frozen=True)
class Span:
    """What a finding points at: a class, method, or instruction."""

    class_name: str
    method_name: Optional[str] = None
    instruction_index: Optional[int] = None

    @property
    def uri(self) -> str:
        """A stable artifact URI for exporters."""
        return f"classes/{self.class_name}.class"

    @property
    def qualified_name(self) -> str:
        if self.method_name is None:
            return self.class_name
        return f"{self.class_name}.{self.method_name}"


@dataclass(frozen=True)
class Finding:
    """One lint result."""

    rule_id: str
    severity: Severity
    message: str
    span: Span


@dataclass
class LintContext:
    """Everything rules may read; computed once per lint run."""

    program: Program
    order: FirstUseOrder
    link: NetworkLink
    cpi: float
    dataflows: Dict[MethodId, MethodDataflow]
    reports: Dict[str, TransferPlanReport]
    trace: Optional[ExecutionTrace] = None
    interproc: Optional[InterprocAnalysis] = None


class LintRule:
    """Base class: subclass, set the class attributes, register."""

    rule_id: str = ""
    severity: Severity = Severity.INFO
    description: str = ""

    def run(self, context: LintContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, message: str, span: Span) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            span=span,
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register_rule(rule_class: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.rule_id:
        raise AnalysisError(
            f"rule {rule_class.__name__} has no rule_id"
        )
    if _REGISTRY.get(rule_class.rule_id) not in (None, rule_class):
        raise AnalysisError(
            f"duplicate lint rule id {rule_class.rule_id!r}"
        )
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def all_rules() -> List[LintRule]:
    """Fresh instances of every registered rule, id-sorted."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


@register_rule
class TypeErrorRule(LintRule):
    rule_id = "type-error"
    severity = Severity.ERROR
    description = (
        "The typed dataflow engine proved this method faults on some "
        "path (type mismatch, stack imbalance, or malformed structure)."
    )

    def run(self, context: LintContext) -> Iterable[Finding]:
        for method_id, dataflow in context.dataflows.items():
            # Issue messages carry a "Class.method: " prefix for
            # standalone use; the finding's span already names the
            # method, so drop it here.
            prefix = (
                f"{method_id.class_name}.{method_id.method_name}: "
            )
            for issue in dataflow.issues:
                message = issue.message
                if message.startswith(prefix):
                    message = message[len(prefix):]
                yield self.finding(
                    f"{issue.kind}: {message}",
                    Span(
                        class_name=method_id.class_name,
                        method_name=method_id.method_name,
                        instruction_index=issue.instruction_index,
                    ),
                )


@register_rule
class ScheduleDeadlockRule(LintRule):
    rule_id = "schedule-deadlock"
    severity = Severity.ERROR
    description = (
        "A class's parallel start trigger waits on bytes only its own "
        "dependents can deliver; the stream is never requested."
    )

    def run(self, context: LintContext) -> Iterable[Finding]:
        for report in context.reports.values():
            health = report.schedule_health
            if health is None:
                continue
            for deadlock in health.deadlocks:
                blocked = (
                    f" (cycle through {', '.join(deadlock.blocked_on)})"
                    if deadlock.blocked_on
                    else ""
                )
                yield self.finding(
                    f"start trigger {deadlock.start_after_bytes:.0f}B can "
                    f"never fire: startable dependencies deliver at most "
                    f"{deadlock.achievable_bytes:.0f}B{blocked}",
                    Span(class_name=deadlock.class_name),
                )


@register_rule
class GuaranteedMispredictRule(LintRule):
    rule_id = "guaranteed-mispredict"
    severity = Severity.WARNING
    description = (
        "The first-use prediction is provably wrong: the class stream "
        "cannot have been requested at first invocation, so a "
        "demand-fetch round trip is certain."
    )

    def run(self, context: LintContext) -> Iterable[Finding]:
        for methodology, report in context.reports.items():
            for method_id in report.guaranteed_mispredicts:
                verdict = report.verdicts[method_id]
                yield self.finding(
                    f"[{methodology}] {verdict.reason}",
                    Span(
                        class_name=method_id.class_name,
                        method_name=method_id.method_name,
                    ),
                )


@register_rule
class DeadMethodRule(LintRule):
    rule_id = "dead-method"
    severity = Severity.WARNING
    description = (
        "Unreachable from the entry point through the call graph; a "
        "tail-placement or elision candidate that still costs wire "
        "bytes."
    )

    def run(self, context: LintContext) -> Iterable[Finding]:
        reported: set = set()
        for report in context.reports.values():
            for method_id in report.dead_methods:
                if method_id in reported:
                    continue
                reported.add(method_id)
                yield self.finding(
                    "never called from the entry point; consider "
                    "placing it at the transfer tail or eliding it",
                    Span(
                        class_name=method_id.class_name,
                        method_name=method_id.method_name,
                    ),
                )


@register_rule
class ProvenStallRule(LintRule):
    rule_id = "proven-stall"
    severity = Severity.INFO
    description = (
        "This method's transfer unit provably arrives after its first "
        "use; execution stalls here under the analyzed plan."
    )

    def run(self, context: LintContext) -> Iterable[Finding]:
        for methodology, report in context.reports.items():
            entry = None
            try:
                entry = context.program.resolve_entry()
            except Exception:
                pass
            for method_id in report.proven_stalls:
                if method_id == entry:
                    continue  # the entry always stalls (invocation latency)
                verdict = report.verdicts[method_id]
                yield self.finding(
                    f"[{methodology}] {verdict.reason}",
                    Span(
                        class_name=method_id.class_name,
                        method_name=method_id.method_name,
                    ),
                )


@register_rule
class DeadMethodShippedRule(LintRule):
    rule_id = "dead-method-shipped"
    severity = Severity.WARNING
    description = (
        "Proven unreachable by the interprocedural RTA pass, yet the "
        "transfer order ships its bytes ahead of live methods, "
        "delaying every later first use; prune it or move it to the "
        "transfer tail."
    )

    def run(self, context: LintContext) -> Iterable[Finding]:
        analysis = context.interproc
        if analysis is None or not analysis.dead:
            return
        dead = set(analysis.dead)
        positions: Dict[MethodId, int] = {}
        last_live = -1
        for position, entry in enumerate(context.order.entries):
            positions[entry.method] = position
            if entry.method not in dead:
                last_live = position
        for method_id in analysis.dead:
            position = positions.get(method_id)
            if position is None or position > last_live:
                continue  # already behind every live method: harmless
            size = context.program.method(method_id).size
            yield self.finding(
                f"proven unreachable (RTA + dataflow feasibility) but "
                f"shipped at position {position}, ahead of live "
                f"methods; its {size}B delay every later first use",
                Span(
                    class_name=method_id.class_name,
                    method_name=method_id.method_name,
                ),
            )


@register_rule
class GuaranteedMispredictOrderRule(LintRule):
    rule_id = "guaranteed-mispredict-order"
    severity = Severity.WARNING
    description = (
        "The transfer order places a method before one of its "
        "call-graph dominators; every call chain reaching the method "
        "runs the dominator first, so the predicted relative order is "
        "wrong for every input."
    )

    def run(self, context: LintContext) -> Iterable[Finding]:
        analysis = context.interproc
        if analysis is None:
            return
        positions = {
            entry.method: position
            for position, entry in enumerate(context.order.entries)
        }
        for method_id, position in positions.items():
            dominator = analysis.immediate_dominators.get(method_id)
            while dominator is not None:
                dominator_position = positions.get(dominator)
                if (
                    dominator_position is not None
                    and dominator_position > position
                ):
                    yield self.finding(
                        f"placed at position {position}, before its "
                        f"call-graph dominator "
                        f"{dominator.class_name}.{dominator.method_name} "
                        f"(position {dominator_position}); its first "
                        f"use can never precede the dominator's",
                        Span(
                            class_name=method_id.class_name,
                            method_name=method_id.method_name,
                        ),
                    )
                    break  # one inversion per method is enough
                dominator = analysis.immediate_dominators.get(dominator)


@register_rule
class UnreachableCallTargetRule(LintRule):
    rule_id = "unreachable-call-target"
    severity = Severity.ERROR
    description = (
        "A feasible call site names a method its internal callee "
        "class does not define — a torn reference that faults under "
        "strict linking the first time the site executes."
    )

    def run(self, context: LintContext) -> Iterable[Finding]:
        analysis = context.interproc
        if analysis is None:
            return
        for site in analysis.torn_sites:
            yield self.finding(
                f"call at instruction {site.instruction_index} targets "
                f"a method that internal class {site.external_class} "
                f"does not define; the site faults when it executes",
                Span(
                    class_name=site.caller.class_name,
                    method_name=site.caller.method_name,
                    instruction_index=site.instruction_index,
                ),
            )


@dataclass
class LintReport:
    """All findings from one lint run plus analyzer cost."""

    findings: List[Finding] = field(default_factory=list)
    rules: List[LintRule] = field(default_factory=list)
    methods_analyzed: int = 0
    runtime_seconds: float = 0.0
    notes: List[str] = field(default_factory=list)

    @property
    def has_errors(self) -> bool:
        return any(
            finding.severity is Severity.ERROR
            for finding in self.findings
        )

    def by_severity(self) -> Dict[Severity, int]:
        counts: Dict[Severity, int] = {}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts


def run_lint(
    program: Program,
    order: Optional[FirstUseOrder] = None,
    link: Optional[NetworkLink] = None,
    cpi: float = 30.0,
    trace: Optional[ExecutionTrace] = None,
    methodologies: Tuple[str, ...] = ("parallel", "interleaved"),
    rules: Optional[List[LintRule]] = None,
    metrics: Optional["MetricsRegistry"] = None,
    recorder: Optional["TraceRecorder"] = None,
) -> LintReport:
    """Run lint rules over a program and its transfer plans.

    Args:
        program: The program to lint (original layout).
        order: First-use order; static-estimated when omitted.
        link: Network link model; T1 when omitted.
        cpi: Average cycles per bytecode instruction.
        trace: Execution trace enabling the precise interval replay
            (and misprediction proofs); work-model bounds otherwise.
        methodologies: Transfer methodologies to analyze.
        rules: Rule instances to run; the full registry when omitted.
        metrics: Optional registry receiving ``analyze_runtime_seconds``,
            ``analyze_findings_total`` (labels ``rule``, ``severity``)
            and ``analyze_methods``.
        recorder: Optional recorder receiving one ``analysis_finding``
            event per finding (clock: seconds of analyzer runtime).
    """
    started = time.perf_counter()
    if order is None:
        order = estimate_first_use(program)
    if link is None:
        from ..transfer import T1_LINK

        link = T1_LINK
    report = LintReport(rules=rules if rules is not None else all_rules())

    dataflows: Dict[MethodId, MethodDataflow] = {}
    for classfile in program.classes:
        for method in classfile.methods:
            method_id = MethodId(classfile.name, method.name)
            dataflows[method_id] = analyze_method(classfile, method)
    report.methods_analyzed = len(dataflows)

    reports: Dict[str, TransferPlanReport] = {}
    for methodology in methodologies:
        try:
            reports[methodology] = analyze_transfer_plan(
                program,
                order,
                link,
                cpi,
                methodology=methodology,
                trace=trace,
            )
        except AnalysisError as exc:
            report.notes.append(
                f"transfer-plan analysis skipped for {methodology}: {exc}"
            )

    interproc: Optional[InterprocAnalysis] = None
    try:
        interproc = analyze_interproc(program)
    except Exception as exc:  # advisory: rules degrade, lint proceeds
        report.notes.append(f"interprocedural analysis skipped: {exc}")

    context = LintContext(
        program=program,
        order=order,
        link=link,
        cpi=cpi,
        dataflows=dataflows,
        reports=reports,
        trace=trace,
        interproc=interproc,
    )
    for rule in report.rules:
        report.findings.extend(rule.run(context))
    report.runtime_seconds = time.perf_counter() - started

    if metrics is not None:
        metrics.histogram("analyze_runtime_seconds").observe(
            report.runtime_seconds
        )
        metrics.gauge("analyze_methods").set(report.methods_analyzed)
        for finding in report.findings:
            metrics.counter(
                "analyze_findings_total",
                labels={
                    "rule": finding.rule_id,
                    "severity": finding.severity.value,
                },
            ).inc()
    if recorder is not None:
        for finding in report.findings:
            recorder.analysis_finding(
                report.runtime_seconds,
                rule=finding.rule_id,
                severity=finding.severity.value,
                target=finding.span.qualified_name,
            )
    return report
