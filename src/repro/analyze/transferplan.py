"""Static stall / misprediction / deadlock proofs for transfer plans.

Given a program, a first-use order, and a transfer methodology, this
module answers — *without running the simulator* — three questions the
paper's pipeline otherwise only answers empirically:

* which methods **provably arrive before first use** (no stall is
  possible on the analyzed trace);
* which first uses are **guaranteed mispredictions** (the parallel
  schedule cannot have requested the class yet, so a demand fetch is
  certain);
* whether the greedy byte-triggered schedule can **deadlock** — a set
  of classes whose start triggers wait on bytes that can only be
  delivered by classes in the same set.

Soundness rests on closed-form arrival bounds:

interleaved
    The single stream owns the full bandwidth from cycle 0, so a unit's
    arrival is *exactly* its cumulative byte offset in the virtual
    interleaved file times ``cycles_per_byte``.

parallel
    Bandwidth is processor-shared, so only bounds are available.  A
    unit ``u`` of class ``c`` cannot arrive before ``prefix_c(u)``
    bytes have moved (intra-class order, full bandwidth at best):
    ``A_min(u) = prefix_c(u) · cpb``.  For the upper bound: the engine
    is never idle while a startable class is undelivered (every trigger
    is re-checked at each unit completion, and at an idle instant all
    requested streams are fully delivered, so any fixpoint-startable
    trigger has fired and been requested).  Total delivered bytes when
    ``u`` lands therefore equal the elapsed cycles over ``cpb``, and at
    most every byte except ``c``'s own post-``u`` suffix has moved:
    ``A_max(u) = (P_all − suffix_c(u)) · cpb``.  Once *any* request for
    ``c`` exists at time ``R`` (scheduled or demand), the same argument
    gives ``arrival ≤ R + (P_all − suffix_c(u)) · cpb``, which bounds
    demand-fetched arrivals too.

The analyzer replays a trace against an **interval clock** ``[t_lo,
t_hi]`` bracketing the simulator's cycle counter, classifying each
first use by comparing its arrival interval against the clock with a
float-slop ``margin``.  A method is a guaranteed misprediction when it
is the first use of its class and ``t_hi + margin < S_min(c)``, where
``S_min(c) = start_after_bytes · cpb`` is the earliest the trigger can
fire (``∞`` for deadlocked classes): the stream cannot have been
requested when the simulator attempts the method, so the controller's
``on_stall`` demand-fetch branch must run.

Without a trace the analyzer falls back to the
:mod:`~repro.analyze.workmodel` lower bounds — attempts happen no
earlier than the entry unit's arrival plus ``bound(m) · cpi`` — which
can still *prove* methods stall-free but never claims a misprediction
(a synthetic trace may execute less work than any real run).
"""

from __future__ import annotations

import enum
import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..cfg import CallGraph, build_call_graph
from ..errors import AnalysisError, CFGError, ClassFileError
from ..program import MethodId, Program
from ..reorder import FirstUseOrder
from ..reorder import restructure as apply_restructure
from ..transfer import NetworkLink, ParallelController, build_schedule
from ..transfer.interleaved import build_interleaved_file
from ..transfer.streams import StreamEngine
from ..transfer.schedule import TransferSchedule
from ..transfer.units import (
    ClassTransferPlan,
    TransferPolicy,
    UnitKind,
    build_program_plans,
)
from ..vm import ExecutionTrace
from .workmodel import first_use_lower_bounds

__all__ = [
    "StallVerdict",
    "MethodVerdict",
    "DeadlockFinding",
    "ScheduleHealth",
    "TransferPlanReport",
    "analyze_schedule",
    "analyze_transfer_plan",
]

_METHODOLOGIES = ("parallel", "interleaved", "striped")
_TRIGGER_SLOP = 1e-9  # mirrors ParallelController._release_due


class StallVerdict(enum.Enum):
    """The analyzer's classification of one method's first use."""

    PROVEN_NO_STALL = "proven_no_stall"
    PROVEN_STALL = "proven_stall"
    GUARANTEED_MISPREDICT = "guaranteed_mispredict"
    POSSIBLE_STALL = "possible_stall"
    NOT_EXECUTED = "not_executed"

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.value


@dataclass(frozen=True)
class MethodVerdict:
    """One method's verdict with the intervals that justify it.

    Attributes:
        method: The method.
        verdict: The classification.
        arrival_lo / arrival_hi: Bounds on the cycle the method's
            transfer unit arrives (``inf`` = may never arrive).
        attempt_lo / attempt_hi: Bounds on the cycle the simulator
            first attempts the method (``inf`` = unknown / never).
        reason: Human-readable justification.
    """

    method: MethodId
    verdict: StallVerdict
    arrival_lo: float = math.inf
    arrival_hi: float = math.inf
    attempt_lo: float = math.inf
    attempt_hi: float = math.inf
    reason: str = ""


@dataclass(frozen=True)
class DeadlockFinding:
    """A class whose start trigger can never fire.

    Attributes:
        class_name: The deadlocked class.
        start_after_bytes: Its byte trigger.
        achievable_bytes: Bytes its *startable* dependencies can ever
            deliver — strictly less than the trigger.
        blocked_on: Dependency classes that are themselves deadlocked
            (the dependence cycle), if any.
    """

    class_name: str
    start_after_bytes: float
    achievable_bytes: float
    blocked_on: Tuple[str, ...] = ()


@dataclass
class ScheduleHealth:
    """Deadlock analysis of a parallel transfer schedule."""

    startable: Tuple[str, ...]
    deadlocks: Tuple[DeadlockFinding, ...]

    @property
    def ok(self) -> bool:
        return not self.deadlocks


@dataclass
class TransferPlanReport:
    """Everything the transfer-plan analyzer proved.

    Attributes:
        methodology: ``"parallel"``, ``"interleaved"``, or
            ``"striped"``.
        model: ``"trace"`` (interval replay of an execution trace) or
            ``"static"`` (work-model lower bounds; no mispredict
            claims).
        cycles_per_byte / cpi: The cost model analyzed.
        margin: Float-slop used in every strict comparison.
        verdicts: Per-method verdicts, every program method covered.
        schedule_health: Deadlock analysis (parallel only).
        dead_methods: Methods unreachable from the entry point through
            the call graph — tail-placement or elision candidates.
    """

    methodology: str
    model: str
    cycles_per_byte: float
    cpi: float
    margin: float
    verdicts: Dict[MethodId, MethodVerdict] = field(default_factory=dict)
    schedule_health: Optional[ScheduleHealth] = None
    dead_methods: Tuple[MethodId, ...] = ()

    def methods_with(self, verdict: StallVerdict) -> List[MethodId]:
        return [
            method
            for method, entry in self.verdicts.items()
            if entry.verdict is verdict
        ]

    @property
    def proven_no_stall(self) -> List[MethodId]:
        return self.methods_with(StallVerdict.PROVEN_NO_STALL)

    @property
    def proven_stalls(self) -> List[MethodId]:
        return self.methods_with(StallVerdict.PROVEN_STALL)

    @property
    def guaranteed_mispredicts(self) -> List[MethodId]:
        return self.methods_with(StallVerdict.GUARANTEED_MISPREDICT)

    @property
    def possible_stalls(self) -> List[MethodId]:
        return self.methods_with(StallVerdict.POSSIBLE_STALL)


def analyze_schedule(
    schedule: TransferSchedule,
    plans: Dict[str, ClassTransferPlan],
) -> ScheduleHealth:
    """Prove which classes' start triggers can ever fire.

    A class is *startable* when its ``start_after_bytes`` is coverable
    by the total bytes of its already-startable dependencies; the
    startable set grows to a fixpoint from the trigger-at-zero classes.
    The residue is deadlocked: greedy byte-triggered release can never
    request those streams, so every use of them demand-fetches.
    (:func:`repro.transfer.build_schedule` never produces a deadlock —
    each trigger is derived from a realizable prefix sum — but tampered
    or hand-written schedules can.)
    """
    totals = {name: plan.total_bytes for name, plan in plans.items()}
    startable: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for start in schedule.starts:
            if start.class_name in startable:
                continue
            achievable = sum(
                totals.get(dependency, 0)
                for dependency in start.dependency_classes
                if dependency in startable
            )
            if start.start_after_bytes <= achievable + _TRIGGER_SLOP:
                startable.add(start.class_name)
                changed = True
    deadlocks = []
    for start in schedule.starts:
        if start.class_name in startable:
            continue
        achievable = sum(
            totals.get(dependency, 0)
            for dependency in start.dependency_classes
            if dependency in startable
        )
        blocked_on = tuple(
            dependency
            for dependency in start.dependency_classes
            if dependency not in startable
        )
        deadlocks.append(
            DeadlockFinding(
                class_name=start.class_name,
                start_after_bytes=start.start_after_bytes,
                achievable_bytes=float(achievable),
                blocked_on=blocked_on,
            )
        )
    ordered = tuple(
        start.class_name
        for start in schedule.starts
        if start.class_name in startable
    )
    return ScheduleHealth(startable=ordered, deadlocks=tuple(deadlocks))


@dataclass(frozen=True)
class _ArrivalBounds:
    """Arrival interval for one method unit, plus its demand bound."""

    lo: float
    hi: float
    demand_bound: float  # (P_all − suffix) · cpb: arrival ≤ request + this


def _interleaved_arrivals(
    plans: Dict[str, ClassTransferPlan],
    order: FirstUseOrder,
    cpb: float,
) -> Dict[MethodId, _ArrivalBounds]:
    arrivals: Dict[MethodId, _ArrivalBounds] = {}
    cumulative = 0
    for unit in build_interleaved_file(plans, order):
        cumulative += unit.size
        if unit.kind == UnitKind.METHOD and unit.method is not None:
            exact = cumulative * cpb
            # No demand fetching on the single stream: arrival is
            # exact, never accelerated by a request.
            arrivals[unit.method] = _ArrivalBounds(exact, exact, math.inf)
    return arrivals


def _striped_arrivals(
    plans: Dict[str, ClassTransferPlan],
    order: FirstUseOrder,
    cpi: float,
    links: Tuple[NetworkLink, ...],
) -> Dict[MethodId, _ArrivalBounds]:
    """Arrival bounds under escalation-free multi-link striping.

    The scoreboard engine issues units in priority order (deadline,
    then sequence), one per idle link, and a method unit *retires*
    only after its class's global unit.  Bounds:

    * ``lo``: both the unit and its global unit must traverse some
      link — at best the fastest one concurrently
      (``max(size) · cpb_fast``) — and their combined bytes cannot
      beat the aggregate capacity of the whole link set.  Sharper:
      ``u`` issues only once every higher-priority unit has issued,
      at which point at most ``N − 1`` of their bytes are still in
      flight, so at least ``W_before − top(N−1)`` bytes were already
      delivered at no better than the aggregate rate; ``u`` itself
      then needs ``size · cpb_fast``.  On one link this is the exact
      interleaved arrival.
    * ``hi``: list-scheduling makespan on uniform links.  Let ``W``
      be the bytes of ``u``'s priority prefix and ``l`` its
      last-landing unit.  Until ``l`` issues, no lower-priority grain
      can issue and no link idles, so prefix bytes move at the full
      aggregate rate; ``l`` then finishes on its own link, at worst
      the slowest: ``T ≤ (W − p_l)/rate_total + p_l · cpb_slow``,
      maximised (the expression grows with ``p_l``) by the largest
      unit in the prefix.  On one link this collapses to
      ``W · cpb`` — the interleaved exact arrival.

    The ``hi`` bound assumes no demand escalation reorders priorities
    mid-run (escalation only *accelerates* the stalled method, but it
    can delay others), so verdicts model ``escalate=False`` runs; the
    demand bound is ``inf`` accordingly.
    """
    from ..sched.striped import StripedEntry, striped_sequence

    entries = striped_sequence(plans, order, cpi)
    cpb_fast = min(l.cycles_per_byte for l in links)
    cpb_slow = max(l.cycles_per_byte for l in links)
    aggregate_bpc = sum(1.0 / l.cycles_per_byte for l in links)
    lead_size: Dict[str, int] = {}
    for entry in entries:
        if entry.unit.kind in (
            UnitKind.GLOBAL_DATA,
            UnitKind.GLOBAL_FIRST,
        ):
            lead_size[entry.unit.class_name] = entry.unit.size
    arrivals: Dict[MethodId, _ArrivalBounds] = {}
    prefix = 0.0
    largest = 0.0
    # Streaming top-(N−1) unit sizes of the priority prefix: the most
    # bytes that can still be in flight when the next unit issues.
    in_flight_cap = len(links) - 1
    top_sizes: List[float] = []
    for entry in sorted(entries, key=StripedEntry.priority_key):
        unit = entry.unit
        size = float(unit.size)
        if unit.kind == UnitKind.METHOD and unit.method is not None:
            size_g = float(lead_size.get(unit.class_name, 0))
            issue_lo = (
                max(0.0, prefix - sum(top_sizes)) / aggregate_bpc
            )
            lo = max(
                max(size, size_g) * cpb_fast,
                (size + size_g) / aggregate_bpc,
                issue_lo + size * cpb_fast,
            )
            hi = (prefix + size - max(largest, size)) / aggregate_bpc
            hi += max(largest, size) * cpb_slow
            arrivals[unit.method] = _ArrivalBounds(lo, hi, math.inf)
        prefix += size
        largest = max(largest, size)
        if in_flight_cap > 0:
            heapq.heappush(top_sizes, size)
            if len(top_sizes) > in_flight_cap:
                heapq.heappop(top_sizes)
    return arrivals


def _parallel_arrivals(
    plans: Dict[str, ClassTransferPlan],
    startable: Set[str],
    cpb: float,
) -> Dict[MethodId, _ArrivalBounds]:
    total_all = sum(plan.total_bytes for plan in plans.values())
    arrivals: Dict[MethodId, _ArrivalBounds] = {}
    for plan in plans.values():
        prefix = 0
        for unit in plan.units:
            prefix += unit.size
            if unit.kind != UnitKind.METHOD or unit.method is None:
                continue
            suffix = plan.total_bytes - prefix
            demand_bound = (total_all - suffix) * cpb
            hi = (
                demand_bound
                if plan.class_name in startable
                else math.inf
            )
            arrivals[unit.method] = _ArrivalBounds(
                prefix * cpb, hi, demand_bound
            )
    return arrivals


def _exact_parallel_entry_arrival(
    target: Program,
    order: FirstUseOrder,
    link: NetworkLink,
    cpi: float,
    entry_method: MethodId,
    max_streams: Optional[int],
    data_partitioning: bool,
) -> float:
    """The parallel entry stall's end, computed exactly.

    Until the entry method's unit arrives nothing executes, so the
    engine evolves deterministically under the scheduled triggers alone
    — the analyzer replays that closed pre-execution phase with the
    real controller and stream engine, mirroring the simulator's first
    segment instruction for instruction.
    """
    controller = ParallelController(
        target,
        order,
        link,
        cpi,
        max_streams=max_streams,
        data_partitioning=data_partitioning,
    )
    engine = StreamEngine(link, max_streams=controller.max_streams)
    controller.setup(engine)
    unit = controller.required_unit(entry_method)
    if engine.arrived(unit):
        return 0.0
    controller.on_stall(engine, entry_method)
    return engine.run_until_unit(
        unit,
        wakeup=controller.next_wakeup,
        on_advance=controller.on_advance,
    )


def _dead_methods(
    target: Program, call_graph: Optional[CallGraph]
) -> Tuple[MethodId, ...]:
    if call_graph is None:
        return ()
    try:
        entry = target.resolve_entry()
        live = set(call_graph.reachable_from(entry))
    except (ClassFileError, CFGError):
        return ()
    return tuple(
        method_id
        for method_id in target.method_ids()
        if method_id not in live
    )


def analyze_transfer_plan(
    program: Program,
    order: FirstUseOrder,
    link: NetworkLink,
    cpi: float,
    methodology: str = "interleaved",
    trace: Optional[ExecutionTrace] = None,
    max_streams: Optional[int] = None,
    data_partitioning: bool = False,
    restructure: bool = True,
    schedule: Optional[TransferSchedule] = None,
    links: Optional[Tuple[NetworkLink, ...]] = None,
) -> TransferPlanReport:
    """Statically classify every method's first-use stall behavior.

    Mirrors :func:`repro.core.run_nonstrict`'s setup exactly — same
    restructuring, same unit plans, same schedule — so its verdicts
    apply to that simulation.

    Args:
        program: The program (original layout).
        order: First-use order guiding restructuring and scheduling.
        link: Network link model.
        cpi: Average cycles per bytecode instruction.
        methodology: ``"parallel"``, ``"interleaved"``, or
            ``"striped"`` (multi-link scoreboard striping).
        trace: The execution trace the simulator will replay.  With a
            trace the analyzer runs the precise interval replay; without
            one it falls back to work-model lower bounds and never
            claims a misprediction.
        max_streams: Parallel-only concurrent stream limit.  The
            arrival bounds hold for any limit; this only sharpens the
            exact entry-arrival replay.
        data_partitioning: Split global data into GMDs (§7.3).
        restructure: Match the simulation's ``restructure`` flag.
        schedule: Override the greedy schedule (parallel only; used to
            analyze tampered or hand-written schedules).
        links: The link set for ``methodology="striped"`` (defaults
            to ``(link,)``); verdicts then bound the scoreboard
            engine's escalation-free multi-link arrival model.

    Raises:
        AnalysisError: On an unknown methodology, or a trace method
            absent from the program.
    """
    if methodology not in _METHODOLOGIES:
        raise AnalysisError(
            f"unknown transfer methodology {methodology!r}; "
            f"pick from {_METHODOLOGIES}"
        )
    target = apply_restructure(program, order) if restructure else program
    policy = (
        TransferPolicy.DATA_PARTITIONED
        if data_partitioning
        else TransferPolicy.NON_STRICT
    )
    plans = build_program_plans(target, policy)
    cpb = link.cycles_per_byte
    margin = 0.5 * cpb

    health: Optional[ScheduleHealth] = None
    s_min: Dict[str, float] = {}
    if methodology == "parallel":
        tampered = schedule is not None
        if schedule is None:
            schedule = build_schedule(target, plans, order, link, cpi)
        health = analyze_schedule(schedule, plans)
        startable = set(health.startable)
        for start in schedule.starts:
            s_min[start.class_name] = (
                start.start_after_bytes * cpb
                if start.class_name in startable
                else math.inf
            )
        arrivals = _parallel_arrivals(plans, startable, cpb)
        if trace is not None and trace.segments and not tampered:
            entry_method = trace.segments[0].method
            bounds = arrivals.get(entry_method)
            if bounds is not None:
                exact = _exact_parallel_entry_arrival(
                    target,
                    order,
                    link,
                    cpi,
                    entry_method,
                    max_streams,
                    data_partitioning,
                )
                arrivals[entry_method] = _ArrivalBounds(
                    exact, exact, bounds.demand_bound
                )
    elif methodology == "striped":
        link_set = tuple(links) if links else (link,)
        arrivals = _striped_arrivals(plans, order, cpi, link_set)
        cpb = max(l.cycles_per_byte for l in link_set)
        margin = 0.5 * cpb
    else:
        arrivals = _interleaved_arrivals(plans, order, cpb)

    try:
        call_graph: Optional[CallGraph] = build_call_graph(target)
    except CFGError:
        call_graph = None

    report = TransferPlanReport(
        methodology=methodology,
        model="trace" if trace is not None else "static",
        cycles_per_byte=cpb,
        cpi=cpi,
        margin=margin,
        schedule_health=health,
        dead_methods=_dead_methods(target, call_graph),
    )
    if trace is not None:
        _replay_trace(report, target, trace, arrivals, s_min, cpi)
    else:
        _static_verdicts(report, target, arrivals, call_graph, cpi)
    return report


def _replay_trace(
    report: TransferPlanReport,
    target: Program,
    trace: ExecutionTrace,
    arrivals: Dict[MethodId, _ArrivalBounds],
    s_min: Dict[str, float],
    cpi: float,
) -> None:
    """Interval-clock replay of ``trace`` against the arrival bounds."""
    margin = report.margin
    parallel = report.methodology == "parallel"
    t_lo = t_hi = 0.0
    seen_methods: Set[MethodId] = set()
    seen_classes: Set[str] = set()
    for segment in trace.segments:
        method = segment.method
        if method not in seen_methods:
            seen_methods.add(method)
            first_of_class = method.class_name not in seen_classes
            seen_classes.add(method.class_name)
            bounds = arrivals.get(method)
            if bounds is None:
                raise AnalysisError(
                    f"trace method {method} has no transfer unit in the "
                    "analyzed plan"
                )
            # Once any request for the class exists (≤ the attempt,
            # since a stall issues one), arrival ≤ request + demand
            # bound — keeps t_hi finite past deadlocked classes.
            effective_hi = min(bounds.hi, t_hi + bounds.demand_bound)
            start_min = s_min.get(method.class_name, 0.0)
            mispredict_certain = (
                parallel
                and first_of_class
                and t_hi + margin < start_min
            )
            if bounds.hi + margin <= t_lo:
                verdict, reason = (
                    StallVerdict.PROVEN_NO_STALL,
                    f"unit arrives by cycle {bounds.hi:.0f}, first use "
                    f"at cycle {t_lo:.0f} or later",
                )
            elif bounds.lo > t_hi + margin or mispredict_certain:
                if mispredict_certain:
                    verdict = StallVerdict.GUARANTEED_MISPREDICT
                    reason = (
                        "class stream cannot have been requested before "
                        f"cycle {start_min:.0f}, first use attempted by "
                        f"cycle {t_hi:.0f}: demand fetch certain"
                    )
                else:
                    verdict = StallVerdict.PROVEN_STALL
                    reason = (
                        f"unit cannot arrive before cycle {bounds.lo:.0f}, "
                        f"first use attempted by cycle {t_hi:.0f}"
                    )
                report.verdicts[method] = MethodVerdict(
                    method=method,
                    verdict=verdict,
                    arrival_lo=bounds.lo,
                    arrival_hi=bounds.hi,
                    attempt_lo=t_lo,
                    attempt_hi=t_hi,
                    reason=reason,
                )
                t_lo = max(t_lo, bounds.lo)
                t_hi = max(t_hi, effective_hi)
                t_lo += segment.instructions * cpi
                t_hi += segment.instructions * cpi
                continue
            else:
                verdict, reason = (
                    StallVerdict.POSSIBLE_STALL,
                    f"arrival window [{bounds.lo:.0f}, {bounds.hi:.0f}] "
                    f"overlaps attempt window [{t_lo:.0f}, {t_hi:.0f}]",
                )
            report.verdicts[method] = MethodVerdict(
                method=method,
                verdict=verdict,
                arrival_lo=bounds.lo,
                arrival_hi=bounds.hi,
                attempt_lo=t_lo,
                attempt_hi=t_hi,
                reason=reason,
            )
            if verdict is StallVerdict.POSSIBLE_STALL:
                t_hi = max(t_hi, effective_hi)
        t_lo += segment.instructions * cpi
        t_hi += segment.instructions * cpi
    for method_id in target.method_ids():
        if method_id not in report.verdicts:
            report.verdicts[method_id] = MethodVerdict(
                method=method_id,
                verdict=StallVerdict.NOT_EXECUTED,
                arrival_lo=arrivals[method_id].lo
                if method_id in arrivals
                else math.inf,
                arrival_hi=arrivals[method_id].hi
                if method_id in arrivals
                else math.inf,
                reason="method does not appear in the trace",
            )


def _static_verdicts(
    report: TransferPlanReport,
    target: Program,
    arrivals: Dict[MethodId, _ArrivalBounds],
    call_graph: Optional[CallGraph],
    cpi: float,
) -> None:
    """Work-model verdicts when no trace is available.

    Attempts are bounded below by the entry unit's earliest arrival
    plus the interprocedural instruction lower bound; that is enough to
    *prove* methods stall-free, but guaranteed-misprediction claims
    need the trace replay (a synthetic statistical trace may do less
    work than any real execution).
    """
    margin = report.margin
    try:
        entry = target.resolve_entry()
    except ClassFileError as exc:
        raise AnalysisError(
            "static transfer-plan analysis needs an entry point"
        ) from exc
    if call_graph is None:
        raise AnalysisError(
            "static transfer-plan analysis needs well-formed method "
            "bodies (CFG construction failed)"
        )
    lower_bounds = first_use_lower_bounds(target, call_graph)
    entry_bounds = arrivals.get(entry)
    entry_arrival_lo = entry_bounds.lo if entry_bounds is not None else 0.0
    for method_id in target.method_ids():
        bounds = arrivals.get(method_id)
        arrival_lo = bounds.lo if bounds is not None else math.inf
        arrival_hi = bounds.hi if bounds is not None else math.inf
        if method_id == entry:
            report.verdicts[method_id] = MethodVerdict(
                method=method_id,
                verdict=StallVerdict.PROVEN_STALL,
                arrival_lo=arrival_lo,
                arrival_hi=arrival_hi,
                attempt_lo=0.0,
                attempt_hi=0.0,
                reason="entry method always waits for its own arrival "
                "(invocation latency)",
            )
            continue
        work = lower_bounds.bound(method_id)
        if math.isinf(work):
            report.verdicts[method_id] = MethodVerdict(
                method=method_id,
                verdict=StallVerdict.NOT_EXECUTED,
                arrival_lo=arrival_lo,
                arrival_hi=arrival_hi,
                reason="unreachable from the entry point in the call "
                "graph",
            )
            continue
        attempt_lo = entry_arrival_lo + work * cpi
        if arrival_hi + margin <= attempt_lo:
            verdict = StallVerdict.PROVEN_NO_STALL
            reason = (
                f"unit arrives by cycle {arrival_hi:.0f}; at least "
                f"{work:.0f} instructions must execute first "
                f"(attempt ≥ cycle {attempt_lo:.0f})"
            )
        else:
            verdict = StallVerdict.POSSIBLE_STALL
            reason = (
                f"arrival window [{arrival_lo:.0f}, {arrival_hi:.0f}] "
                f"not provably before earliest attempt "
                f"(cycle {attempt_lo:.0f})"
            )
        report.verdicts[method_id] = MethodVerdict(
            method=method_id,
            verdict=verdict,
            arrival_lo=arrival_lo,
            arrival_hi=arrival_hi,
            attempt_lo=attempt_lo,
            reason=reason,
        )
