"""Interprocedural weighted call-graph analysis.

The paper's static (SCG) estimator treats every call edge as equally
likely and ships every method, even provably-dead ones.  This module is
the static-analysis layer that fixes both:

* **Reachability / RTA** — the ISA's ``CALL`` is direct (a U2
  MethodRef), so "resolving the feasible target set" means proving
  which call *sites* can execute at all: a site is *feasible* when the
  typed dataflow engine (:mod:`repro.analyze.dataflow`) found its
  instruction reachable inside a method that is itself reachable from
  ``main`` over feasible edges.  Every feasible internal site is
  therefore monomorphic ("devirtualized" — exactly one target); sites
  in dataflow-dead blocks and methods unreachable from the entry are
  pruned from the graph, which is how the analysis *sharpens* the plain
  call-graph reachability of :mod:`repro.cfg.callgraph`.

* **Ball–Larus-style static branch probabilities** — the classic
  non-loop heuristics (opcode/equality, call, return) combined
  Dempster–Shafer style on top of the loop-branch heuristic, yielding
  per-edge probabilities, per-block frequencies (loop trip counts
  capped), per-call-site frequencies, and — propagated over the
  call-graph SCC condensation — per-method invocation frequencies and
  weighted call edges.

* **Expected first-use distances** — a probability-discounted shortest
  path (in executed instructions) from the entry to every method: the
  static analogue of a first-use profile, consumed by
  :mod:`repro.reorder.weighted`.

* **Dead-method pruning** — :func:`prune_dead_methods` drops provably
  unreachable methods from the shipped program.  Classes and constant
  pools are never touched (surviving code references pools by index),
  so the pruned program is bytecode-compatible with the original; the
  soundness cross-check lives in ``tests/analyze/test_interproc.py``.

All of the paper's six workloads are fully reachable (zero dead
methods), so pruning is the identity there — the cross-check also runs
on dead-method-injected variants to exercise the interesting case.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..bytecode.opcodes import OPCODE_TABLE, Opcode
from ..cfg.basic_blocks import BasicBlock
from ..cfg.callgraph import CallEdge, CallGraph, build_call_graph
from ..cfg.graph import ControlFlowGraph, EdgeKind
from ..cfg.loops import LoopAnalysis, analyze_loops
from ..classfile.classfile import ClassFile
from ..program import MethodId, Program
from .dataflow import MethodDataflow, analyze_method
from .domain import ValType

__all__ = [
    "BACK_EDGE_PROBABILITY",
    "MAX_CYCLIC_PROBABILITY",
    "BranchModel",
    "ResolvedCallSite",
    "MethodSummary",
    "InterprocAnalysis",
    "PruneResult",
    "analyze_interproc",
    "branch_probabilities",
    "block_frequencies",
    "prune_dead_methods",
]

#: Ball–Larus loop-branch heuristic: a back edge is taken ~88% of the
#: time (Ball & Larus 1993, Table 3).
BACK_EDGE_PROBABILITY = 0.88

#: Wu–Larus opcode heuristic: integer/pointer equality comparisons are
#: unlikely to succeed.
OPCODE_HEURISTIC_PROBABILITY = 0.84

#: Call heuristic: the successor *without* a call is more likely.
CALL_HEURISTIC_PROBABILITY = 0.78

#: Return heuristic: the successor that immediately returns is less
#: likely.
RETURN_HEURISTIC_PROBABILITY = 0.72

#: Cap on a loop's cyclic probability — bounds the geometric trip-count
#: estimate at 1 / (1 - cap) = 16 iterations per entry.
MAX_CYCLIC_PROBABILITY = 0.9375

#: Frequency multiplier applied inside recursive (non-trivial) SCCs of
#: the call graph: assume bounded recursion roughly doubles call counts.
RECURSION_FACTOR = 2.0

#: Damping for intra-SCC frequency relaxation (keeps the fixed-point
#: iteration convergent without solving the linear system exactly).
_SCC_DAMPING = 0.5
_SCC_ITERATIONS = 4

#: Floor applied to edge probabilities when discounting path distances,
#: so an "impossible" path contributes a finite but huge distance.
_MIN_PATH_PROBABILITY = 0.05

_EQUALITY_BRANCHES = frozenset({Opcode.IFEQ, Opcode.IF_ICMPEQ})
_INEQUALITY_BRANCHES = frozenset({Opcode.IFNE, Opcode.IF_ICMPNE})


def _combine(base: float, evidence: float) -> float:
    """Dempster–Shafer combination of two taken-probabilities."""
    numerator = base * evidence
    return numerator / (numerator + (1.0 - base) * (1.0 - evidence))


@dataclass(frozen=True)
class BranchModel:
    """Static branch probabilities and block frequencies of one CFG.

    Attributes:
        probabilities: Taken probability per CFG edge, keyed by
            ``(source block id, target block id)``.  Probabilities out
            of one block sum to 1.
        frequencies: Expected executions of each block per method
            entry; the entry block has frequency 1.0 and loop bodies
            are scaled by capped geometric trip counts.
    """

    probabilities: Mapping[Tuple[int, int], float]
    frequencies: Mapping[int, float]

    def probability(self, source: int, target: int) -> float:
        return self.probabilities.get((source, target), 0.0)

    def frequency(self, block_id: int) -> float:
        return self.frequencies.get(block_id, 0.0)


def _pointerish(dataflow: Optional[MethodDataflow], block: BasicBlock) -> bool:
    """Whether the block's compare-branch operands look like pointers.

    The shallow lattice's ARR/STR values play the role of pointers in
    Ball–Larus' pointer heuristic; an equality test between them is
    even less likely to succeed than an integer one, but we reuse the
    same opcode-heuristic weight — the refinement we take from the
    dataflow state is merely *whether the heuristic applies* when the
    operand kinds are known.
    """
    if dataflow is None or not block.instruction_indexes:
        return False
    index = block.instruction_indexes[-1]
    state = dataflow.entry_states.get(index)
    if state is None:
        return False
    stack = getattr(state, "stack", None)
    if not stack:
        return False
    return any(
        kind in (ValType.ARR, ValType.STR) for kind in list(stack)[-2:]
    )


def branch_probabilities(
    cfg: ControlFlowGraph,
    loops: Optional[LoopAnalysis] = None,
    dataflow: Optional[MethodDataflow] = None,
) -> Dict[Tuple[int, int], float]:
    """Assign a static probability to every CFG edge.

    Heuristics, applied as Dempster–Shafer evidence on conditional
    two-way branches (unconditional edges get probability 1):

    * **loop**: a back edge is taken with :data:`BACK_EDGE_PROBABILITY`;
      a loop-exit edge opposite a loop-continuing edge gets the
      complement.
    * **opcode/equality**: ``ifeq``/``if_icmpeq`` succeed rarely,
      ``ifne``/``if_icmpne`` succeed often (pointer operands, as
      reported by the dataflow lattice, keep the same weight).
    * **call**: prefer the successor that does not immediately call.
    * **return**: avoid the successor that immediately returns.
    """
    loops = loops or analyze_loops(cfg)
    result: Dict[Tuple[int, int], float] = {}
    for block in cfg.blocks:
        edges = cfg.successor_edges(block.block_id)
        if not edges:
            continue
        if len(edges) == 1:
            result[(edges[0].source, edges[0].target)] = 1.0
            continue
        if len(edges) > 2:  # pragma: no cover - binary branches only
            share = 1.0 / len(edges)
            for edge in edges:
                result[(edge.source, edge.target)] = share
            continue
        taken = next((e for e in edges if e.kind is EdgeKind.TAKEN), edges[0])
        fall = next((e for e in edges if e is not taken))
        taken_key = (taken.source, taken.target)
        fall_key = (fall.source, fall.target)

        probability = 0.5
        # Loop heuristic (dominant evidence, applied first).
        taken_back = loops.is_back_edge(taken.source, taken.target)
        fall_back = loops.is_back_edge(fall.source, fall.target)
        if taken_back and not fall_back:
            probability = _combine(probability, BACK_EDGE_PROBABILITY)
        elif fall_back and not taken_back:
            probability = _combine(probability, 1.0 - BACK_EDGE_PROBABILITY)
        else:
            taken_exit = loops.is_loop_exit_edge(taken)
            fall_exit = loops.is_loop_exit_edge(fall)
            if taken_exit and not fall_exit:
                probability = _combine(
                    probability, 1.0 - BACK_EDGE_PROBABILITY
                )
            elif fall_exit and not taken_exit:
                probability = _combine(probability, BACK_EDGE_PROBABILITY)

        # Opcode / equality heuristic (pointer-refined).
        opcode = block.last.opcode
        if opcode in _EQUALITY_BRANCHES or (
            opcode in _INEQUALITY_BRANCHES
            and _pointerish(dataflow, block)
        ):
            weight = (
                1.0 - OPCODE_HEURISTIC_PROBABILITY
                if opcode in _EQUALITY_BRANCHES
                else OPCODE_HEURISTIC_PROBABILITY
            )
            probability = _combine(probability, weight)
        elif opcode in _INEQUALITY_BRANCHES:
            probability = _combine(
                probability, OPCODE_HEURISTIC_PROBABILITY
            )

        # Call and return heuristics look one block ahead.
        def _has_call(block_id: int) -> bool:
            return bool(cfg.block(block_id).call_sites)

        def _returns(block_id: int) -> bool:
            target = cfg.block(block_id)
            return bool(target.instructions) and OPCODE_TABLE[
                target.last.opcode
            ].is_return

        taken_call, fall_call = _has_call(taken.target), _has_call(fall.target)
        if taken_call and not fall_call:
            probability = _combine(
                probability, 1.0 - CALL_HEURISTIC_PROBABILITY
            )
        elif fall_call and not taken_call:
            probability = _combine(probability, CALL_HEURISTIC_PROBABILITY)

        taken_ret, fall_ret = _returns(taken.target), _returns(fall.target)
        if taken_ret and not fall_ret:
            probability = _combine(
                probability, 1.0 - RETURN_HEURISTIC_PROBABILITY
            )
        elif fall_ret and not taken_ret:
            probability = _combine(probability, RETURN_HEURISTIC_PROBABILITY)

        result[taken_key] = probability
        result[fall_key] = 1.0 - probability
    return result


def block_frequencies(
    cfg: ControlFlowGraph,
    probabilities: Mapping[Tuple[int, int], float],
    loops: Optional[LoopAnalysis] = None,
) -> Dict[int, float]:
    """Propagate branch probabilities into expected block frequencies.

    Frequencies are first propagated along *forward* edges only (the
    acyclic skeleton, in reverse postorder), then every natural loop
    scales its body by a geometric trip count derived from the loop's
    back-edge probability, capped at :data:`MAX_CYCLIC_PROBABILITY`.
    Nested loops multiply.  This is Wu–Larus' structural propagation in
    its simplest sound-for-ranking form — the consumers only need
    relative weights, not exact counts.
    """
    loops = loops or analyze_loops(cfg)
    incoming_edges: Dict[int, List[Tuple[int, int]]] = {}
    for edge in cfg.edges:
        if loops.is_back_edge(edge.source, edge.target):
            continue
        incoming_edges.setdefault(edge.target, []).append(
            (edge.source, edge.target)
        )
    frequencies: Dict[int, float] = {cfg.entry.block_id: 1.0}
    for block_id in cfg.reverse_postorder():
        if block_id == cfg.entry.block_id:
            continue
        frequencies[block_id] = sum(
            frequencies.get(source, 0.0) * probabilities.get((source, target), 0.0)
            for source, target in incoming_edges.get(block_id, [])
        )
    for loop in loops.loops:
        cyclic = min(
            MAX_CYCLIC_PROBABILITY,
            sum(
                probabilities.get((tail, header), 0.0)
                for tail, header in loop.back_edges
            ),
        )
        trip = 1.0 / (1.0 - cyclic)
        for block_id in loop.body:
            if block_id in frequencies:
                frequencies[block_id] *= trip
    return frequencies


@dataclass(frozen=True)
class ResolvedCallSite:
    """One CALL instruction with its RTA-resolved feasible target set.

    Attributes:
        caller: Method containing the call.
        block_id: Basic block of the call instruction.
        instruction_index: Index of the CALL in the caller's code.
        targets: Feasible internal targets.  The ISA is direct-call, so
            a feasible internal site always has exactly one — the
            "devirtualized" case; an infeasible site has none.
        external_class: Callee class name when the target is not
            defined by the program (the VM's modeled external call).
        torn: True when the callee *class* is defined by the program
            but the named method is missing — a torn reference that
            faults under strict linking.
        feasible: False when the site lies in a dataflow-unreachable
            block or an interprocedurally dead method.
        frequency: Expected executions per program run.
    """

    caller: MethodId
    block_id: int
    instruction_index: int
    targets: Tuple[MethodId, ...]
    external_class: Optional[str]
    torn: bool
    feasible: bool
    frequency: float

    @property
    def monomorphic(self) -> bool:
        return self.feasible and len(self.targets) == 1


@dataclass(frozen=True)
class MethodSummary:
    """Per-method results of the interprocedural analysis."""

    method: MethodId
    reachable: bool
    frequency: float
    expected_first_use: float
    branch_model: BranchModel


@dataclass
class InterprocAnalysis:
    """Whole-program result of :func:`analyze_interproc`.

    Attributes:
        program: The analyzed program.
        call_graph: The underlying (unsharpened) call graph.
        entry: Resolved entry method.
        summaries: Per-method summaries, in program (file) order.
        call_sites: Every CALL site with its resolution.
        reachable: Methods reachable from the entry over *feasible*
            call edges — a subset of plain call-graph reachability.
        dead: Unreachable methods, in program order.
        edge_weights: Expected executions of every feasible internal
            call edge (caller frequency × site frequency).
        immediate_dominators: Immediate dominator of each reachable
            method in the feasible call graph (entry maps to None).
    """

    program: Program
    call_graph: CallGraph
    entry: MethodId
    summaries: Dict[MethodId, MethodSummary]
    call_sites: Tuple[ResolvedCallSite, ...]
    reachable: FrozenSet[MethodId]
    dead: Tuple[MethodId, ...]
    edge_weights: Dict[CallEdge, float]
    immediate_dominators: Dict[MethodId, Optional[MethodId]]

    @property
    def monomorphic_sites(self) -> List[ResolvedCallSite]:
        """Feasible, devirtualized (single-target) internal call sites."""
        return [site for site in self.call_sites if site.monomorphic]

    @property
    def torn_sites(self) -> List[ResolvedCallSite]:
        """Feasible sites naming a missing method of an internal class."""
        return [
            site for site in self.call_sites if site.feasible and site.torn
        ]

    @property
    def external_sites(self) -> List[ResolvedCallSite]:
        """Feasible sites whose callee class the program does not define."""
        return [
            site
            for site in self.call_sites
            if site.feasible and site.external_class is not None and not site.torn
        ]

    def frequency(self, method: MethodId) -> float:
        return self.summaries[method].frequency

    def expected_first_use(self, method: MethodId) -> float:
        return self.summaries[method].expected_first_use

    def dominates(self, dominator: MethodId, method: MethodId) -> bool:
        """True when every call chain reaching ``method`` first runs
        ``dominator`` — i.e. ``dominator``'s first use provably
        precedes ``method``'s in any execution."""
        if dominator == method:
            return True
        current: Optional[MethodId] = method
        while current is not None:
            current = self.immediate_dominators.get(current)
            if current == dominator:
                return True
        return False


def _feasible_indexes(dataflow: MethodDataflow) -> Optional[Set[int]]:
    """Instruction indexes proven reachable, or None for "assume all".

    When the dataflow engine reported issues its reachability facts are
    not trustworthy, so every call site is conservatively feasible.
    """
    if not dataflow.ok or dataflow.cfg is None:
        return None
    return set(dataflow.entry_states)


def _method_scc_frequencies(
    entry: MethodId,
    nodes: Sequence[MethodId],
    edges: Mapping[MethodId, List[Tuple[MethodId, float]]],
) -> Dict[MethodId, float]:
    """Propagate invocation frequencies over the call-graph SCC DAG."""
    index_of = {node: i for i, node in enumerate(nodes)}
    # Iterative Tarjan SCC over the feasible call graph.
    low: Dict[MethodId, int] = {}
    order: Dict[MethodId, int] = {}
    on_stack: Set[MethodId] = set()
    stack: List[MethodId] = []
    components: List[List[MethodId]] = []
    counter = 0
    for root in nodes:
        if root in order:
            continue
        work: List[Tuple[MethodId, int]] = [(root, 0)]
        while work:
            node, edge_index = work[-1]
            if edge_index == 0:
                order[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            targets = edges.get(node, [])
            advanced = False
            while edge_index < len(targets):
                target = targets[edge_index][0]
                edge_index += 1
                if target not in order:
                    work[-1] = (node, edge_index)
                    work.append((target, 0))
                    advanced = True
                    break
                if target in on_stack:
                    low[node] = min(low[node], order[target])
            if advanced:
                continue
            work[-1] = (node, edge_index)
            if edge_index >= len(targets):
                work.pop()
                if low[node] == order[node]:
                    component: List[MethodId] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
    # Tarjan emits components in reverse topological order.
    components.reverse()
    component_of: Dict[MethodId, int] = {}
    for i, component in enumerate(components):
        for member in component:
            component_of[member] = i

    frequencies: Dict[MethodId, float] = {node: 0.0 for node in nodes}
    frequencies[entry] = 1.0
    for i, component in enumerate(components):
        members = set(component)
        recursive = len(component) > 1 or any(
            target in members
            for member in component
            for target, _ in edges.get(member, [])
        )
        if recursive:
            boost = RECURSION_FACTOR
            for _ in range(_SCC_ITERATIONS):
                for member in sorted(members, key=lambda m: index_of[m]):
                    internal = sum(
                        frequencies[src] * weight * _SCC_DAMPING
                        for src in members
                        for target, weight in edges.get(src, [])
                        if target == member
                    )
                    external = frequencies[member]
                    frequencies[member] = max(external, internal)
            for member in members:
                frequencies[member] *= boost
        # Push this component's settled frequencies downstream.
        for member in component:
            for target, weight in edges.get(member, []):
                if target in members:
                    continue
                frequencies[target] += frequencies[member] * weight
    return frequencies


def _call_graph_dominators(
    entry: MethodId,
    nodes: Sequence[MethodId],
    successors: Mapping[MethodId, List[MethodId]],
) -> Dict[MethodId, Optional[MethodId]]:
    """Cooper–Harvey–Kennedy dominators over the feasible call graph."""
    # Reverse postorder from the entry.
    visited: Set[MethodId] = set()
    postorder: List[MethodId] = []
    work: List[Tuple[MethodId, int]] = [(entry, 0)]
    visited.add(entry)
    while work:
        node, i = work[-1]
        targets = successors.get(node, [])
        if i < len(targets):
            work[-1] = (node, i + 1)
            target = targets[i]
            if target not in visited:
                visited.add(target)
                work.append((target, 0))
        else:
            postorder.append(node)
            work.pop()
    rpo = list(reversed(postorder))
    number = {node: i for i, node in enumerate(rpo)}
    predecessors: Dict[MethodId, List[MethodId]] = {node: [] for node in rpo}
    for node in rpo:
        for target in successors.get(node, []):
            if target in number:
                predecessors[target].append(node)

    idom: Dict[MethodId, Optional[MethodId]] = {entry: None}

    def intersect(a: MethodId, b: MethodId) -> MethodId:
        while a != b:
            while number[a] > number[b]:
                parent = idom[a]
                assert parent is not None
                a = parent
            while number[b] > number[a]:
                parent = idom[b]
                assert parent is not None
                b = parent
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo[1:]:
            candidates = [p for p in predecessors[node] if p in idom]
            if not candidates:
                continue
            new = candidates[0]
            for other in candidates[1:]:
                new = intersect(new, other)
            if idom.get(node) != new:
                idom[node] = new
                changed = True
    return idom


def _first_use_distances(
    entry: MethodId,
    nodes: Sequence[MethodId],
    site_costs: Mapping[MethodId, List[Tuple[MethodId, float]]],
) -> Dict[MethodId, float]:
    """Probability-discounted shortest first-use distance per method."""
    distances: Dict[MethodId, float] = {node: math.inf for node in nodes}
    distances[entry] = 0.0
    heap: List[Tuple[float, int, MethodId]] = [(0.0, 0, entry)]
    tiebreak = 0
    while heap:
        distance, _, node = heapq.heappop(heap)
        if distance > distances.get(node, math.inf):
            continue
        for target, cost in site_costs.get(node, []):
            candidate = distance + cost
            if candidate < distances.get(target, math.inf):
                distances[target] = candidate
                tiebreak += 1
                heapq.heappush(heap, (candidate, tiebreak, target))
    return distances


def _intra_method_reach_costs(
    cfg: ControlFlowGraph,
    probabilities: Mapping[Tuple[int, int], float],
) -> Dict[int, float]:
    """Discounted instruction distance from method entry to each block.

    Edge cost is the source block's instruction count divided by the
    edge probability (floored), so unlikely paths look long without
    becoming unreachable.
    """
    distances: Dict[int, float] = {cfg.entry.block_id: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, cfg.entry.block_id)]
    while heap:
        distance, block_id = heapq.heappop(heap)
        if distance > distances.get(block_id, math.inf):
            continue
        source = cfg.block(block_id)
        for edge in cfg.successor_edges(block_id):
            probability = max(
                probabilities.get((edge.source, edge.target), 0.0),
                _MIN_PATH_PROBABILITY,
            )
            candidate = distance + len(source.instructions) / probability
            if candidate < distances.get(edge.target, math.inf):
                distances[edge.target] = candidate
                heapq.heappush(heap, (candidate, edge.target))
    return distances


def analyze_interproc(
    program: Program, entry: Optional[MethodId] = None
) -> InterprocAnalysis:
    """Run the full interprocedural analysis over ``program``."""
    call_graph = build_call_graph(program)
    entry_id = entry if entry is not None else program.resolve_entry()

    # Per-method intraprocedural facts.
    dataflows: Dict[MethodId, MethodDataflow] = {}
    branch_models: Dict[MethodId, BranchModel] = {}
    feasible_sets: Dict[MethodId, Optional[Set[int]]] = {}
    reach_costs: Dict[MethodId, Dict[int, float]] = {}
    for classfile in program.classes:
        for method in classfile.methods:
            method_id = MethodId(classfile.name, method.name)
            dataflow = analyze_method(classfile, method)
            dataflows[method_id] = dataflow
            cfg = call_graph.cfg(method_id)
            loops = analyze_loops(cfg)
            probabilities = branch_probabilities(cfg, loops, dataflow)
            frequencies = block_frequencies(cfg, probabilities, loops)
            branch_models[method_id] = BranchModel(
                probabilities=probabilities, frequencies=frequencies
            )
            feasible_sets[method_id] = _feasible_indexes(dataflow)
            reach_costs[method_id] = _intra_method_reach_costs(
                cfg, probabilities
            )

    def site_feasible(edge: CallEdge) -> bool:
        feasible = feasible_sets.get(edge.caller)
        return feasible is None or edge.instruction_index in feasible

    # Interprocedural reachability over feasible internal edges.
    reachable: Set[MethodId] = {entry_id}
    frontier: List[MethodId] = [entry_id]
    while frontier:
        caller = frontier.pop()
        for edge in call_graph.calls_from(caller):
            if not edge.internal or not site_feasible(edge):
                continue
            if edge.callee not in reachable:
                reachable.add(edge.callee)
                frontier.append(edge.callee)

    nodes: List[MethodId] = [
        m for m in call_graph.methods if m in reachable
    ]
    # Per-caller feasible internal edges with per-site frequencies.
    weighted_edges: Dict[MethodId, List[Tuple[MethodId, float]]] = {}
    successor_lists: Dict[MethodId, List[MethodId]] = {}
    site_cost_lists: Dict[MethodId, List[Tuple[MethodId, float]]] = {}
    feasible_edge_list: List[CallEdge] = []
    for caller in nodes:
        model = branch_models[caller]
        costs = reach_costs[caller]
        for edge in call_graph.calls_from(caller):
            if not edge.internal or not site_feasible(edge):
                continue
            feasible_edge_list.append(edge)
            site_frequency = model.frequency(edge.block_id)
            weighted_edges.setdefault(caller, []).append(
                (edge.callee, site_frequency)
            )
            successors = successor_lists.setdefault(caller, [])
            if edge.callee not in successors:
                successors.append(edge.callee)
            cost = costs.get(edge.block_id, math.inf)
            if math.isfinite(cost):
                site_cost_lists.setdefault(caller, []).append(
                    (edge.callee, cost + 1.0)
                )

    frequencies = _method_scc_frequencies(entry_id, nodes, weighted_edges)
    idoms = _call_graph_dominators(entry_id, nodes, successor_lists)
    first_use = _first_use_distances(entry_id, nodes, site_cost_lists)

    edge_weights: Dict[CallEdge, float] = {}
    for edge in feasible_edge_list:
        edge_weights[edge] = frequencies.get(edge.caller, 0.0) * branch_models[
            edge.caller
        ].frequency(edge.block_id)

    # Resolve every call site.
    call_sites: List[ResolvedCallSite] = []
    for method_id in call_graph.methods:
        caller_reachable = method_id in reachable
        model = branch_models[method_id]
        for edge in call_graph.calls_from(method_id):
            feasible = caller_reachable and site_feasible(edge)
            torn = (
                not edge.internal
                and program.has_class(edge.callee.class_name)
            )
            call_sites.append(
                ResolvedCallSite(
                    caller=method_id,
                    block_id=edge.block_id,
                    instruction_index=edge.instruction_index,
                    targets=(edge.callee,) if edge.internal else (),
                    external_class=(
                        None if edge.internal else edge.callee.class_name
                    ),
                    torn=torn,
                    feasible=feasible,
                    frequency=(
                        frequencies.get(method_id, 0.0)
                        * model.frequency(edge.block_id)
                        if feasible
                        else 0.0
                    ),
                )
            )

    summaries: Dict[MethodId, MethodSummary] = {}
    dead: List[MethodId] = []
    for method_id in program.method_ids():
        is_reachable = method_id in reachable
        if not is_reachable:
            dead.append(method_id)
        summaries[method_id] = MethodSummary(
            method=method_id,
            reachable=is_reachable,
            frequency=frequencies.get(method_id, 0.0),
            expected_first_use=first_use.get(method_id, math.inf),
            branch_model=branch_models[method_id],
        )

    return InterprocAnalysis(
        program=program,
        call_graph=call_graph,
        entry=entry_id,
        summaries=summaries,
        call_sites=tuple(call_sites),
        reachable=frozenset(reachable),
        dead=tuple(dead),
        edge_weights=edge_weights,
        immediate_dominators=idoms,
    )


@dataclass(frozen=True)
class PruneResult:
    """Outcome of :func:`prune_dead_methods`.

    Attributes:
        program: The pruned program (identical object layout: same
            classes in the same order, same constant pools, dead
            methods removed).
        pruned: The removed methods, in program order.
        bytes_saved: Total static size of the removed methods.
    """

    program: Program
    pruned: Tuple[MethodId, ...]
    bytes_saved: int


def prune_dead_methods(
    program: Program, analysis: Optional[InterprocAnalysis] = None
) -> PruneResult:
    """Drop provably-unreachable methods from the shipped program.

    Soundness: only methods the interprocedural RTA proves unreachable
    from the entry are removed; classes and constant pools are kept
    verbatim (surviving code addresses pools by index), and classes
    whose methods are all dead remain as data-only classes, so the
    surviving program links and executes exactly as before.
    """
    analysis = analysis or analyze_interproc(program)
    dead = set(analysis.dead)
    if not dead:
        return PruneResult(program=program, pruned=(), bytes_saved=0)
    pruned: List[MethodId] = []
    bytes_saved = 0
    classes: List[ClassFile] = []
    for classfile in program.classes:
        kept = []
        for method in classfile.methods:
            method_id = MethodId(classfile.name, method.name)
            if method_id in dead:
                pruned.append(method_id)
                bytes_saved += method.size
            else:
                kept.append(method)
        if len(kept) == len(classfile.methods):
            classes.append(classfile)
        else:
            classes.append(replace(classfile, methods=kept))
    new_program = replace(program, classes=classes)
    return PruneResult(
        program=new_program, pruned=tuple(pruned), bytes_saved=bytes_saved
    )
