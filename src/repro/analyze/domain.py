"""The abstract value domain for typed dataflow verification.

The VM manipulates three concrete value kinds: 32-bit wrapping ints
(arithmetic, branches, array indexes), arrays (Python lists created by
``NEWARRAY``), and strings (``LDC`` of a ``StringEntry``).  The abstract
domain mirrors them plus ``TOP`` — the join of conflicting kinds, i.e.
"some value, kind statically unknown".

The lattice is deliberately shallow::

            TOP
          /  |  \\
        INT ARR STR

There is no bottom element: an :class:`AbstractState` only exists for
reachable instructions, so "unreachable" is modeled by *absence* of a
state, exactly like the depth-only verifier this engine replaces.

Two soundness decisions keep the checker a strict superset of the old
depth-only verifier without rejecting any program the VM executes:

* locals below ``max_locals`` that were never stored are typed ``INT``
  — the VM zero-initializes missing slots, so loading one yields 0;
* ``ALOAD`` pushes ``TOP``, not ``INT`` — ``ASTORE`` may legally store
  any value, so element loads are statically unknowable.

Type *errors* are therefore only reported when an operand's abstract
type is a definite non-``TOP`` mismatch: the program is guaranteed to
misbehave at runtime on that path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["ValType", "AbstractState", "join_types", "merge_states"]


class ValType(enum.Enum):
    """Abstract kind of one stack slot or local variable."""

    INT = "int"
    ARR = "arr"
    STR = "str"
    TOP = "top"

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.value


def join_types(a: ValType, b: ValType) -> ValType:
    """Least upper bound of two abstract types."""
    if a is b:
        return a
    return ValType.TOP


def compatible(actual: ValType, required: ValType) -> bool:
    """Whether ``actual`` may hold a value of ``required`` kind.

    ``TOP`` is compatible with everything (it *may* be the required
    kind); a definite other kind is not.
    """
    return actual is ValType.TOP or actual is required


@dataclass(frozen=True)
class AbstractState:
    """Typed operand stack and locals at one program point.

    Attributes:
        stack: Operand stack, bottom first (``stack[-1]`` is the top).
        locals: One entry per local slot, ``max_locals`` long.
    """

    stack: Tuple[ValType, ...]
    locals: Tuple[ValType, ...]

    @property
    def depth(self) -> int:
        return len(self.stack)

    def push(self, *types: ValType) -> "AbstractState":
        return AbstractState(self.stack + types, self.locals)

    def pop(self, count: int) -> "AbstractState":
        if count == 0:
            return self
        return AbstractState(self.stack[:-count], self.locals)

    def peek(self, depth_from_top: int = 0) -> ValType:
        return self.stack[-1 - depth_from_top]

    def store_local(self, slot: int, value: ValType) -> "AbstractState":
        updated = list(self.locals)
        updated[slot] = value
        return AbstractState(self.stack, tuple(updated))

    @classmethod
    def method_entry(
        cls, parameters: Tuple[str, ...], max_locals: int
    ) -> "AbstractState":
        """Entry state: parameters in the first slots, INT elsewhere.

        A parameter declared ``A`` is definitely an array.  ``I`` in a
        descriptor means "one machine word": the surface language does
        not type parameters, so the compiler writes ``I`` even for
        arguments that hold arrays at runtime — those slots enter as
        TOP.  The VM zero-extends locals, so an unstored slot beyond
        the parameters reads as the int 0 — never as an undefined
        value.
        """
        slots = [
            ValType.ARR if parameter == "A" else ValType.TOP
            for parameter in parameters
        ]
        slots.extend([ValType.INT] * (max_locals - len(slots)))
        return cls(stack=(), locals=tuple(slots))


def merge_states(
    a: AbstractState, b: AbstractState
) -> Optional[AbstractState]:
    """Pointwise join of two states at a control-flow join.

    Returns:
        The joined state, or ``None`` when the stack depths disagree —
        the same structural error the depth-only verifier rejected.
    """
    if len(a.stack) != len(b.stack):
        return None
    stack = tuple(
        join_types(x, y) for x, y in zip(a.stack, b.stack)
    )
    locals_ = tuple(
        join_types(x, y) for x, y in zip(a.locals, b.locals)
    )
    return AbstractState(stack, locals_)
