"""A conservative model of the work done before each method's first use.

The transfer-plan analyzer needs to place every method's *first
invocation* on a timeline without running the program.  The sound
direction is a **lower bound**: at least how many instructions must the
VM execute, on *any* run, before ``m``'s first instruction?  If a
method's transfer unit provably arrives before even that minimum work
has been done, the method can never stall.

The bound is a shortest path over the interprocedural call structure:

* within one method, the cheapest route from the entry block to a call
  site is a block-level shortest path (Dijkstra; a block's weight is
  its instruction count), plus the call's position inside its block,
  plus one for the ``CALL`` itself — which always executes before the
  callee's first instruction;
* across methods, ``bound(callee) ≤ bound(caller) + cheapest route to
  any call site targeting it``, relaxed with a second Dijkstra over
  methods.

Callee bodies along the way are costed at the single ``CALL``
instruction — real executions only run *more* instructions, never
fewer, so the bound stays sound.  Recursion and mutual recursion need
no special casing: cycles simply never relax below the first entry
cost.  Methods unreachable from the entry point get an infinite bound
(and are dead-code candidates, which the transfer-plan analyzer
reports separately).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cfg import CallGraph, ControlFlowGraph, build_call_graph
from ..program import MethodId, Program

__all__ = ["FirstUseLowerBounds", "first_use_lower_bounds"]


def _block_entry_costs(cfg: ControlFlowGraph) -> Dict[int, int]:
    """Minimum instructions executed before each block's first
    instruction, from the method entry block."""
    weights = {
        block.block_id: len(block.instructions) for block in cfg.blocks
    }
    dist: Dict[int, int] = {cfg.entry.block_id: 0}
    heap: List[Tuple[int, int]] = [(0, cfg.entry.block_id)]
    while heap:
        cost, block_id = heapq.heappop(heap)
        if cost > dist.get(block_id, math.inf):
            continue
        through = cost + weights[block_id]
        for target in cfg.successors(block_id):
            if through < dist.get(target, math.inf):
                dist[target] = through
                heapq.heappush(heap, (through, target))
    return dist


def _call_costs(
    cfg: ControlFlowGraph,
) -> List[Tuple[int, int]]:
    """``(instruction_index, min instructions through the CALL)`` for
    every call site reachable from the method entry."""
    entry_costs = _block_entry_costs(cfg)
    costs: List[Tuple[int, int]] = []
    for block in cfg.blocks:
        base = entry_costs.get(block.block_id)
        if base is None:  # unreachable block: its calls never execute
            continue
        for call_site in block.call_sites:
            position = block.instruction_indexes.index(
                call_site.instruction_index
            )
            costs.append((call_site.instruction_index, base + position + 1))
    return costs


@dataclass
class FirstUseLowerBounds:
    """Sound lower bounds on pre-first-use work, per method.

    Attributes:
        entry: The program entry point the bounds are rooted at.
        bounds: Minimum instructions executed strictly before each
            method's first instruction; ``math.inf`` for methods not
            reachable from the entry through the call graph.
        call_graph: The underlying call graph (reused by callers for
            dead-method detection).
    """

    entry: MethodId
    bounds: Dict[MethodId, float]
    call_graph: CallGraph

    def bound(self, method_id: MethodId) -> float:
        return self.bounds.get(method_id, math.inf)

    def reachable(self, method_id: MethodId) -> bool:
        return math.isfinite(self.bound(method_id))


def first_use_lower_bounds(
    program: Program,
    call_graph: Optional[CallGraph] = None,
) -> FirstUseLowerBounds:
    """Compute per-method lower bounds on work before first use.

    Args:
        program: The program to analyze (restructured or not — the
            bounds depend only on code, not layout).
        call_graph: Reuse an already-built call graph.

    Raises:
        CFGError: If a method body is structurally invalid (only when
            ``call_graph`` is not supplied).
        ClassFileError: If the program has no valid entry point.
    """
    graph = call_graph if call_graph is not None else build_call_graph(program)
    entry = program.resolve_entry()

    # Cheapest route from each caller's entry to each internal callee.
    cheapest_edge: Dict[MethodId, Dict[MethodId, int]] = {}
    for method_id in graph.methods:
        edges = [edge for edge in graph.calls_from(method_id) if edge.internal]
        if not edges:
            continue
        cost_by_index = dict(_call_costs(graph.cfg(method_id)))
        per_callee: Dict[MethodId, int] = {}
        for edge in edges:
            cost = cost_by_index.get(edge.instruction_index)
            if cost is None:  # call site in an unreachable block
                continue
            previous = per_callee.get(edge.callee)
            if previous is None or cost < previous:
                per_callee[edge.callee] = cost
        if per_callee:
            cheapest_edge[method_id] = per_callee

    bounds: Dict[MethodId, float] = {
        method_id: math.inf for method_id in graph.methods
    }
    bounds[entry] = 0.0
    heap: List[Tuple[float, int, MethodId]] = [(0.0, 0, entry)]
    tiebreak = 1
    while heap:
        cost, _, method_id = heapq.heappop(heap)
        if cost > bounds.get(method_id, math.inf):
            continue
        for callee, edge_cost in cheapest_edge.get(method_id, {}).items():
            relaxed = cost + edge_cost
            if relaxed < bounds.get(callee, math.inf):
                bounds[callee] = relaxed
                heapq.heappush(heap, (relaxed, tiebreak, callee))
                tiebreak += 1
    return FirstUseLowerBounds(entry=entry, bounds=bounds, call_graph=graph)
