"""Abstract-interpretation dataflow over one method's bytecode.

A block-level fixpoint over :func:`repro.cfg.build_cfg`: every reachable
basic block gets a typed :class:`~repro.analyze.domain.AbstractState`
at entry, the transfer function interprets each instruction over the
type lattice, and states merge pointwise at control-flow joins until
nothing changes.  The engine subsumes the checks the depth-only
verifier used to hand-roll — underflow, ``max_stack``, join-depth
consistency, return/descriptor agreement, operand well-formedness —
and adds *definite* type checking on top: an issue of kind ``type`` is
reported only when an operand's abstract type can never satisfy the
instruction (the VM is guaranteed to fault on that path).

The engine never raises for problems *in the analyzed code*; it returns
them as :class:`DataflowIssue` values so callers choose their policy —
the incremental verifier raises :class:`~repro.errors.VerificationError`
on the first issue, the lint framework reports all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..bytecode import OPCODE_TABLE, Instruction, Opcode, SysCall
from ..classfile import (
    ClassFile,
    FieldRefEntry,
    MethodDescriptor,
    MethodInfo,
    MethodRefEntry,
    parse_descriptor,
)
from ..cfg import ControlFlowGraph, build_cfg
from ..errors import CFGError, ClassFileError
from .domain import AbstractState, ValType, compatible, merge_states

__all__ = ["DataflowIssue", "MethodDataflow", "analyze_method"]

#: Opcodes whose operands the VM coerces through 32-bit int arithmetic.
_ARITH_BINARY = (
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
)

_SYS_PUSHES_INT = (SysCall.TIME, SysCall.RAND)


@dataclass(frozen=True)
class DataflowIssue:
    """One defect the engine found.

    Attributes:
        kind: Stable machine-readable category — ``"structure"``
            (empty code, bad descriptor, locals too small),
            ``"cfg"`` (invalid branch target, fall-off-end),
            ``"stack"`` (underflow, overflow, join mismatch,
            nonzero depth at return),
            ``"operand"`` (LDC/GETSTATIC/CALL/SYS/LOAD operand
            malformed),
            ``"type"`` (definite runtime type mismatch).
        message: Human-readable description.
        instruction_index: Index into the method's code, when the
            issue anchors to one instruction.
    """

    kind: str
    message: str
    instruction_index: Optional[int] = None


@dataclass
class MethodDataflow:
    """Result of analyzing one method.

    Attributes:
        class_name: Owning class.
        method_name: Analyzed method.
        cfg: The method's CFG (``None`` when construction failed).
        entry_states: Abstract state *before* each reachable
            instruction, keyed by instruction index.  Unreachable
            instructions are absent, mirroring the verifier's
            reachable-only discipline.
        issues: Every defect found, in discovery order.
    """

    class_name: str
    method_name: str
    cfg: Optional[ControlFlowGraph]
    entry_states: Dict[int, AbstractState]
    issues: List[DataflowIssue]

    @property
    def ok(self) -> bool:
        return not self.issues

    @property
    def reachable_indexes(self) -> List[int]:
        return sorted(self.entry_states)

    def state_before(self, instruction_index: int) -> AbstractState:
        return self.entry_states[instruction_index]


class _Analysis:
    """One fixpoint run; collects issues instead of raising."""

    def __init__(self, classfile: ClassFile, method: MethodInfo) -> None:
        self.classfile = classfile
        self.method = method
        self.descriptor: Optional[MethodDescriptor] = None
        self.issues: List[DataflowIssue] = []
        self.entry_states: Dict[int, AbstractState] = {}
        self._issue_keys: set = set()

    def issue(
        self, kind: str, message: str, index: Optional[int] = None
    ) -> None:
        key = (kind, message, index)
        if key in self._issue_keys:
            return
        self._issue_keys.add(key)
        self.issues.append(DataflowIssue(kind, message, index))

    # -- the fixpoint ----------------------------------------------------

    def run(self) -> MethodDataflow:
        method = self.method
        where = f"{self.classfile.name}.{method.name}"
        if not method.instructions:
            self.issue("structure", f"{where}: empty code")
            return self._result(None)
        try:
            descriptor = parse_descriptor(method.descriptor)
        except ClassFileError as error:
            self.issue("structure", f"{where}: {error}")
            return self._result(None)
        if descriptor.arity > method.max_locals:
            self.issue(
                "structure",
                f"{where}: {descriptor.arity} parameters exceed "
                f"max_locals {method.max_locals}",
            )
            return self._result(None)
        try:
            cfg = build_cfg(method.instructions)
        except CFGError as error:
            self.issue("cfg", f"{where}: {error}")
            return self._result(None)

        self.descriptor = descriptor
        entry_state = AbstractState.method_entry(
            descriptor.parameters, method.max_locals
        )
        in_states: Dict[int, AbstractState] = {
            cfg.entry.block_id: entry_state
        }
        rpo = cfg.reverse_postorder()
        rpo_position = {bid: i for i, bid in enumerate(rpo)}
        worklist = [cfg.entry.block_id]
        queued = {cfg.entry.block_id}
        while worklist:
            worklist.sort(key=rpo_position.__getitem__, reverse=True)
            block_id = worklist.pop()
            queued.discard(block_id)
            out_state = self._flow_block(cfg, block_id, in_states[block_id])
            if out_state is None:
                continue  # path dead-ends (return, or unrecoverable)
            for successor in cfg.successors(block_id):
                known = in_states.get(successor)
                if known is None:
                    in_states[successor] = out_state
                elif known != out_state:
                    merged = merge_states(known, out_state)
                    if merged is None:
                        self.issue(
                            "stack",
                            f"{where}: inconsistent stack depth at "
                            f"block {successor} ({known.depth} vs "
                            f"{out_state.depth})",
                            cfg.block(successor).instruction_indexes[0],
                        )
                        continue
                    if merged == known:
                        continue
                    in_states[successor] = merged
                else:
                    continue
                if successor not in queued:
                    queued.add(successor)
                    worklist.append(successor)
        return self._result(cfg)

    def _result(self, cfg: Optional[ControlFlowGraph]) -> MethodDataflow:
        return MethodDataflow(
            class_name=self.classfile.name,
            method_name=self.method.name,
            cfg=cfg,
            entry_states=self.entry_states,
            issues=self.issues,
        )

    # -- per-block transfer ----------------------------------------------

    def _flow_block(
        self,
        cfg: ControlFlowGraph,
        block_id: int,
        state: AbstractState,
    ) -> Optional[AbstractState]:
        block = cfg.block(block_id)
        for instruction, index in zip(
            block.instructions, block.instruction_indexes
        ):
            self.entry_states[index] = state
            next_state = self._transfer(instruction, index, state)
            if next_state is None:
                return None
            state = next_state
        if block.terminates:
            return None
        return state

    # -- per-instruction transfer ------------------------------------------

    def _transfer(
        self,
        instruction: Instruction,
        index: int,
        state: AbstractState,
    ) -> Optional[AbstractState]:
        """Abstractly execute one instruction.

        Returns the successor state, or ``None`` when control does not
        continue (returns) or the state is unrecoverable (underflow,
        malformed operand) — the path stops propagating, exactly like
        the old verifier stopped at its first error.
        """
        opcode = instruction.opcode
        where = f"{self.classfile.name}.{self.method.name}"
        pool = self.classfile.constant_pool

        def underflow(pops: int) -> bool:
            if state.depth < pops:
                self.issue(
                    "stack",
                    f"{where}: stack underflow at instruction {index} "
                    f"({instruction.mnemonic})",
                    index,
                )
                return True
            return False

        def require(
            operand: ValType, needed: ValType, role: str
        ) -> None:
            if not compatible(operand, needed):
                self.issue(
                    "type",
                    f"{where}: {instruction.mnemonic} at instruction "
                    f"{index} needs {needed.value} for {role}, got "
                    f"{operand.value}",
                    index,
                )

        def overflow_check(result: AbstractState) -> Optional[AbstractState]:
            if result.depth > self.method.max_stack:
                self.issue(
                    "stack",
                    f"{where}: stack depth {result.depth} exceeds "
                    f"max_stack {self.method.max_stack} at instruction "
                    f"{index}",
                    index,
                )
                return None
            return result

        if opcode == Opcode.NOP:
            return state
        if opcode == Opcode.ICONST:
            return overflow_check(state.push(ValType.INT))
        if opcode == Opcode.LDC:
            try:
                value = pool.constant_value(instruction.operand)
            except Exception:
                self.issue(
                    "operand",
                    f"{where}: LDC operand {instruction.operand} is "
                    "not a loadable constant",
                    index,
                )
                return None
            kind = ValType.STR if isinstance(value, str) else ValType.INT
            return overflow_check(state.push(kind))
        if opcode == Opcode.LOAD:
            if instruction.operand >= self.method.max_locals:
                self.issue(
                    "operand",
                    f"{where}: local slot {instruction.operand} >= "
                    f"max_locals {self.method.max_locals}",
                    index,
                )
                return None
            return overflow_check(
                state.push(state.locals[instruction.operand])
            )
        if opcode == Opcode.STORE:
            if instruction.operand >= self.method.max_locals:
                self.issue(
                    "operand",
                    f"{where}: local slot {instruction.operand} >= "
                    f"max_locals {self.method.max_locals}",
                    index,
                )
                return None
            if underflow(1):
                return None
            value = state.peek()
            return state.pop(1).store_local(instruction.operand, value)
        if opcode in (Opcode.GETSTATIC, Opcode.PUTSTATIC):
            entry = pool.get(instruction.operand)
            if not isinstance(entry, FieldRefEntry):
                self.issue(
                    "operand",
                    f"{where}: GETSTATIC/PUTSTATIC operand "
                    f"{instruction.operand} is not a FieldRef",
                    index,
                )
                return None
            try:
                _, _, field_descriptor = pool.member_ref(
                    instruction.operand
                )
            except Exception as error:
                self.issue("operand", f"{where}: {error}", index)
                return None
            # An "I" field holds one untyped word (the compiler writes
            # "I" for every global); only "A" is a definite array.
            field_is_array = field_descriptor == "A"
            if opcode == Opcode.GETSTATIC:
                return overflow_check(
                    state.push(
                        ValType.ARR if field_is_array else ValType.TOP
                    )
                )
            if underflow(1):
                return None
            if field_is_array:
                require(
                    state.peek(), ValType.ARR, "the stored field value"
                )
            return state.pop(1)
        if opcode in _ARITH_BINARY:
            if underflow(2):
                return None
            require(state.peek(1), ValType.INT, "the left operand")
            require(state.peek(0), ValType.INT, "the right operand")
            return state.pop(2).push(ValType.INT)
        if opcode == Opcode.NEG:
            if underflow(1):
                return None
            require(state.peek(), ValType.INT, "the operand")
            return state.pop(1).push(ValType.INT)
        if opcode == Opcode.DUP:
            if underflow(1):
                return None
            return overflow_check(state.push(state.peek()))
        if opcode == Opcode.POP:
            if underflow(1):
                return None
            return state.pop(1)
        if opcode == Opcode.SWAP:
            if underflow(2):
                return None
            top, below = state.peek(0), state.peek(1)
            return state.pop(2).push(top, below)
        if opcode == Opcode.NEWARRAY:
            if underflow(1):
                return None
            require(state.peek(), ValType.INT, "the array size")
            return state.pop(1).push(ValType.ARR)
        if opcode == Opcode.ALOAD:
            if underflow(2):
                return None
            require(state.peek(1), ValType.ARR, "the array")
            require(state.peek(0), ValType.INT, "the index")
            # ASTORE may legally store any value, so element loads are
            # statically unknowable.
            return state.pop(2).push(ValType.TOP)
        if opcode == Opcode.ASTORE:
            if underflow(3):
                return None
            require(state.peek(2), ValType.ARR, "the array")
            require(state.peek(1), ValType.INT, "the index")
            return state.pop(3)
        if opcode == Opcode.ARRAYLEN:
            if underflow(1):
                return None
            require(state.peek(), ValType.ARR, "the array")
            return state.pop(1).push(ValType.INT)
        if opcode == Opcode.CALL:
            entry = pool.get(instruction.operand)
            if not isinstance(entry, MethodRefEntry):
                self.issue(
                    "operand",
                    f"{where}: CALL operand {instruction.operand} is "
                    f"{type(entry).__name__}, expected MethodRefEntry",
                    index,
                )
                return None
            try:
                _, _, call_descriptor = pool.member_ref(
                    instruction.operand
                )
                callee = parse_descriptor(call_descriptor)
            except Exception as error:
                self.issue("operand", f"{where}: {error}", index)
                return None
            if underflow(callee.arity):
                return None
            # Compiled descriptors write "I" for every untyped word, so
            # only explicit "A" annotations constrain an argument.
            for position, parameter in enumerate(callee.parameters):
                if parameter != "A":
                    continue
                operand = state.peek(callee.arity - 1 - position)
                require(operand, ValType.ARR, f"argument {position}")
            state = state.pop(callee.arity)
            if callee.returns_value:
                returned = (
                    ValType.ARR
                    if callee.return_type == "A"
                    else ValType.TOP
                )
                return overflow_check(state.push(returned))
            return state
        if opcode == Opcode.SYS:
            try:
                pops, pushes = SysCall.STACK_EFFECT[instruction.operand]
            except KeyError:
                self.issue(
                    "operand",
                    f"{where}: unknown SYS code {instruction.operand}",
                    index,
                )
                return None
            if underflow(pops):
                return None
            state = state.pop(pops)  # PRINT/BLACKHOLE accept any value
            if pushes:
                kind = (
                    ValType.INT
                    if instruction.operand in _SYS_PUSHES_INT
                    else ValType.TOP
                )
                return overflow_check(state.push(kind))
            return state
        info = OPCODE_TABLE[opcode]
        if info.is_return:
            return self._transfer_return(instruction, index, state)
        if info.is_branch:
            if underflow(info.pops):
                return None
            for operand_position in range(info.pops):
                require(
                    state.peek(operand_position),
                    ValType.INT,
                    "the branch operand",
                )
            return state.pop(info.pops)
        raise AssertionError(  # pragma: no cover - ISA is closed
            f"unhandled opcode {opcode!r}"
        )

    def _transfer_return(
        self,
        instruction: Instruction,
        index: int,
        state: AbstractState,
    ) -> Optional[AbstractState]:
        where = f"{self.classfile.name}.{self.method.name}"
        descriptor = self.descriptor
        assert descriptor is not None
        if instruction.opcode == Opcode.RETURN:
            if descriptor.returns_value:
                self.issue(
                    "structure",
                    f"{where}: RETURN in a value-returning method",
                    index,
                )
            if state.depth != 0:
                self.issue(
                    "stack",
                    f"{where}: {state.depth} values left on the stack "
                    "at return",
                    index,
                )
            return None
        # IRETURN
        if not descriptor.returns_value:
            self.issue(
                "structure",
                f"{where}: IRETURN in a void method",
                index,
            )
            return None
        if state.depth < 1:
            self.issue(
                "stack",
                f"{where}: stack underflow at instruction {index} "
                f"({instruction.mnemonic})",
                index,
            )
            return None
        # "I" returns are untyped words; only an "A" annotation pins
        # the returned kind down to something checkable.
        if descriptor.return_type == "A" and not compatible(
            state.peek(), ValType.ARR
        ):
            self.issue(
                "type",
                f"{where}: ireturn at instruction {index} returns "
                f"{state.peek().value}, descriptor says arr",
                index,
            )
        if state.depth != 1:
            self.issue(
                "stack",
                f"{where}: {state.depth - 1} extra values left on the "
                "stack at return",
                index,
            )
        return None


def analyze_method(
    classfile: ClassFile, method: MethodInfo
) -> MethodDataflow:
    """Run the typed dataflow fixpoint over one method.

    Never raises for defects in the analyzed code — they come back as
    :attr:`MethodDataflow.issues`.
    """
    return _Analysis(classfile, method).run()
