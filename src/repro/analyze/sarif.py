"""SARIF 2.1.0 and plain-JSON exporters for lint reports.

SARIF (Static Analysis Results Interchange Format, OASIS) is what CI
systems ingest for code-scanning annotations.  The exporter emits the
minimal valid subset — ``version``, ``$schema``, one ``run`` with a
``tool.driver`` (name, version, rules) and ``results`` carrying
``ruleId``/``ruleIndex``/``level``/``message``/``locations`` — and
:func:`validate_sarif` structurally checks that subset without a JSON
Schema dependency, so tests can assert validity hermetically.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..errors import AnalysisError
from .lint import Finding, LintReport, Severity

__all__ = [
    "SARIF_VERSION",
    "SARIF_SCHEMA_URI",
    "to_sarif",
    "to_json",
    "sarif_dumps",
    "validate_sarif",
]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Severity → SARIF ``level``.
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _tool_version() -> str:
    # Resolved at call time: repro/__init__ may still be mid-import
    # when this module loads.
    from .. import __version__

    return str(__version__)


def _result(finding: Finding, rule_index: int) -> Dict[str, Any]:
    location: Dict[str, Any] = {
        "physicalLocation": {
            "artifactLocation": {"uri": finding.span.uri},
            "region": {
                "startLine": (finding.span.instruction_index or 0) + 1
            },
        },
        "logicalLocations": [
            {"fullyQualifiedName": finding.span.qualified_name}
        ],
    }
    return {
        "ruleId": finding.rule_id,
        "ruleIndex": rule_index,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [location],
    }


def to_sarif(report: LintReport, tool_name: str = "repro-inspect") -> Dict[str, Any]:
    """Render a lint report as a SARIF 2.1.0 document (a plain dict)."""
    rules = sorted(report.rules, key=lambda rule: rule.rule_id)
    rule_index = {rule.rule_id: index for index, rule in enumerate(rules)}
    driver: Dict[str, Any] = {
        "name": tool_name,
        "version": _tool_version(),
        "informationUri": "https://example.invalid/repro",
        "rules": [
            {
                "id": rule.rule_id,
                "shortDescription": {"text": rule.description},
                "defaultConfiguration": {
                    "level": _LEVELS[rule.severity]
                },
            }
            for rule in rules
        ],
    }
    results = [
        _result(finding, rule_index.get(finding.rule_id, -1))
        for finding in report.findings
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": results,
            }
        ],
    }


def sarif_dumps(report: LintReport, tool_name: str = "repro-inspect") -> str:
    return json.dumps(to_sarif(report, tool_name), indent=2, sort_keys=True)


def to_json(report: LintReport) -> Dict[str, Any]:
    """Plain-JSON view of a lint report (scripting-friendly)."""
    return {
        "findings": [
            {
                "rule": finding.rule_id,
                "severity": finding.severity.value,
                "message": finding.message,
                "class": finding.span.class_name,
                "method": finding.span.method_name,
                "instruction": finding.span.instruction_index,
            }
            for finding in report.findings
        ],
        "counts": {
            severity.value: count
            for severity, count in sorted(
                report.by_severity().items(), key=lambda kv: kv[0].value
            )
        },
        "methods_analyzed": report.methods_analyzed,
        "runtime_seconds": report.runtime_seconds,
        "notes": list(report.notes),
    }


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise AnalysisError(f"invalid SARIF: {message}")


def validate_sarif(document: Any) -> None:
    """Structurally validate the SARIF 2.1.0 subset this repo emits.

    A hand-written check of the normative constraints the exporter
    relies on (the OASIS JSON Schema, reduced to the emitted subset),
    so tests need no external schema library.

    Raises:
        AnalysisError: On the first violated constraint.
    """
    _require(isinstance(document, dict), "document must be an object")
    _require(
        document.get("version") == SARIF_VERSION,
        f"version must be {SARIF_VERSION!r}",
    )
    schema = document.get("$schema")
    _require(
        schema is None or isinstance(schema, str),
        "$schema must be a string when present",
    )
    runs = document.get("runs")
    _require(isinstance(runs, list) and runs, "runs must be a non-empty array")
    for run in runs:
        _require(isinstance(run, dict), "run must be an object")
        tool = run.get("tool")
        _require(isinstance(tool, dict), "run.tool is required")
        driver = tool.get("driver")
        _require(isinstance(driver, dict), "tool.driver is required")
        _require(
            isinstance(driver.get("name"), str) and driver["name"],
            "driver.name must be a non-empty string",
        )
        rules = driver.get("rules", [])
        _require(isinstance(rules, list), "driver.rules must be an array")
        rule_ids: List[str] = []
        for rule in rules:
            _require(isinstance(rule, dict), "rule must be an object")
            _require(
                isinstance(rule.get("id"), str) and rule["id"],
                "rule.id must be a non-empty string",
            )
            rule_ids.append(rule["id"])
            configuration = rule.get("defaultConfiguration")
            if configuration is not None:
                _require(
                    configuration.get("level")
                    in ("none", "note", "warning", "error"),
                    "defaultConfiguration.level must be a SARIF level",
                )
        results = run.get("results")
        _require(
            isinstance(results, list),
            "run.results must be an array when present",
        )
        for result in results:
            _require(isinstance(result, dict), "result must be an object")
            message = result.get("message")
            _require(
                isinstance(message, dict)
                and isinstance(message.get("text"), str),
                "result.message.text is required",
            )
            _require(
                result.get("level")
                in ("none", "note", "warning", "error"),
                "result.level must be a SARIF level",
            )
            rule_id = result.get("ruleId")
            if rule_id is not None:
                _require(
                    isinstance(rule_id, str) and bool(rule_id),
                    "result.ruleId must be a non-empty string",
                )
            rule_index = result.get("ruleIndex")
            if rule_index is not None and rule_index != -1:
                _require(
                    isinstance(rule_index, int)
                    and 0 <= rule_index < len(rule_ids),
                    "result.ruleIndex must index driver.rules",
                )
                if rule_id is not None:
                    _require(
                        rule_ids[rule_index] == rule_id,
                        "result.ruleIndex must match result.ruleId",
                    )
            for location in result.get("locations", []):
                physical = location.get("physicalLocation")
                if physical is None:
                    continue
                artifact = physical.get("artifactLocation", {})
                uri = artifact.get("uri")
                _require(
                    uri is None or isinstance(uri, str),
                    "artifactLocation.uri must be a string",
                )
                region = physical.get("region")
                if region is not None:
                    start_line = region.get("startLine")
                    _require(
                        start_line is None
                        or (isinstance(start_line, int) and start_line >= 1),
                        "region.startLine must be a positive integer",
                    )
