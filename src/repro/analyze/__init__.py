"""repro.analyze — whole-program static analysis for non-strict transfer.

Three layers, each usable on its own:

* :mod:`~repro.analyze.dataflow` — an abstract-interpretation engine
  over :mod:`repro.bytecode`: a typed operand-stack/locals lattice with
  fixpoint iteration over basic blocks, upgrading verification from
  depth-only to full type checking and exposing per-instruction
  abstract states (:func:`analyze_method`);
* :mod:`~repro.analyze.transferplan` — stall/misprediction/deadlock
  proofs for a restructured program plus a parallel or interleaved
  schedule (:func:`analyze_transfer_plan`), cross-checked against the
  cycle-exact simulator;
* :mod:`~repro.analyze.lint` + :mod:`~repro.analyze.sarif` — a typed
  rule registry with JSON and SARIF 2.1.0 exporters behind the
  ``repro-inspect lint`` CLI.

Like :mod:`repro.observe`, every export resolves lazily (PEP 562) so
``import repro`` stays light.
"""

from __future__ import annotations

import importlib
from typing import Dict

_EXPORTS: Dict[str, str] = {
    # domain
    "AbstractState": "domain",
    "ValType": "domain",
    "join_types": "domain",
    "merge_states": "domain",
    # dataflow
    "DataflowIssue": "dataflow",
    "MethodDataflow": "dataflow",
    "analyze_method": "dataflow",
    # workmodel
    "FirstUseLowerBounds": "workmodel",
    "first_use_lower_bounds": "workmodel",
    # interproc
    "BranchModel": "interproc",
    "InterprocAnalysis": "interproc",
    "MethodSummary": "interproc",
    "PruneResult": "interproc",
    "ResolvedCallSite": "interproc",
    "analyze_interproc": "interproc",
    "branch_probabilities": "interproc",
    "block_frequencies": "interproc",
    "prune_dead_methods": "interproc",
    # transferplan
    "DeadlockFinding": "transferplan",
    "MethodVerdict": "transferplan",
    "ScheduleHealth": "transferplan",
    "StallVerdict": "transferplan",
    "TransferPlanReport": "transferplan",
    "analyze_schedule": "transferplan",
    "analyze_transfer_plan": "transferplan",
    # lint
    "Finding": "lint",
    "LintContext": "lint",
    "LintReport": "lint",
    "LintRule": "lint",
    "Severity": "lint",
    "Span": "lint",
    "all_rules": "lint",
    "register_rule": "lint",
    "run_lint": "lint",
    # sarif
    "SARIF_SCHEMA_URI": "sarif",
    "SARIF_VERSION": "sarif",
    "sarif_dumps": "sarif",
    "to_json": "sarif",
    "to_sarif": "sarif",
    "validate_sarif": "sarif",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
