"""Calibrated synthetic equivalents of the paper's six benchmarks.

The original 1998 binaries are unobtainable, so each benchmark is
regenerated as a *structurally real* program — genuine class files with
verifiable bytecode, call graphs, loops, constant pools — whose
aggregate statistics match the published Tables 1, 2, 3, and 9:

* file count, method count, static instruction count, per-method size
  distribution;
* local vs. global data bytes, and the needed-first / in-methods /
  unused split of the global data (which the generator hits by padding
  fields, LDC-referenced constants, and unreferenced pool entries);
* dynamic instruction counts for a *test* and a smaller *train* input,
  realized as execution traces whose first-use order, method coverage,
  and train/test divergence mimic real input-dependence.

Generation is deterministic per benchmark name (seeded RNG), so every
experiment is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..bytecode import CodeBuilder, Opcode
from ..classfile import ClassFileBuilder, FieldInfo, class_layout
from ..datapart import partition_class
from ..errors import WorkloadError
from ..program import MethodId, Program
from ..vm import ExecutionTrace, TraceSegment
from ..reorder.static_estimator import estimate_first_use
from .spec import BenchmarkSpec, benchmark_spec

__all__ = ["SyntheticWorkload", "generate_workload", "paper_workload"]

#: Window from which each method's caller is drawn (recent methods).
_PARENT_WINDOW = 10
#: Fraction of a method's dynamic budget spent at its first use.
_FIRST_USE_FRACTION = (0.25, 0.6)
#: Probability that a call site is wrapped in a conditional.
_CONDITIONAL_CALL_PROB = 0.35


@dataclass
class SyntheticWorkload:
    """One generated benchmark: program plus test/train traces.

    Attributes:
        spec: The published statistics this workload was calibrated to.
        program: The generated program (original textual layout).
        test_trace: Execution trace of the *test* input.
        train_trace: Execution trace of the *train* input.
    """

    spec: BenchmarkSpec
    program: Program
    test_trace: ExecutionTrace
    train_trace: ExecutionTrace

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def cpi(self) -> float:
        return self.spec.cpi


@dataclass
class _MethodPlan:
    """Blueprint for one generated method."""

    index: int
    class_index: int
    name: str
    instructions: int
    children: List[int]
    ldc_bytes: int = 0
    local_payload: int = 0
    loops: bool = True
    is_cold: bool = False

    @property
    def method_name(self) -> str:
        return self.name


def _distribute(total: int, weights: Sequence[float]) -> List[int]:
    """Integer split of ``total`` proportional to ``weights``."""
    weight_sum = sum(weights) or 1.0
    shares = [int(total * weight / weight_sum) for weight in weights]
    remainder = total - sum(shares)
    order = sorted(
        range(len(weights)), key=lambda i: weights[i], reverse=True
    )
    for position in range(remainder):
        shares[order[position % len(order)]] += 1
    return shares


def _method_sizes(
    rng: random.Random, spec: BenchmarkSpec
) -> List[int]:
    """Per-method static instruction counts (lognormal, calibrated)."""
    sigma = 0.75 if spec.instructions_per_method < 60 else 1.0
    weights = [rng.lognormvariate(0.0, sigma) for _ in range(spec.total_methods)]
    sizes = _distribute(spec.static_instructions, weights)
    # Each method needs room for its fixed prologue/epilogue; pay for
    # the flooring by trimming the largest methods so the total holds.
    floor = 5
    sizes = [max(floor, size) for size in sizes]
    excess = sum(sizes) - spec.static_instructions
    for index in sorted(
        range(len(sizes)), key=lambda i: sizes[i], reverse=True
    ):
        if excess <= 0:
            break
        trim = min(excess, sizes[index] - floor)
        sizes[index] -= trim
        excess -= trim
    return sizes


def _assign_classes(
    rng: random.Random, spec: BenchmarkSpec
) -> List[int]:
    """Class index per method: contiguous bands with light noise.

    Real programs are modular: a class's methods are first used close
    together, and a feature the input never exercises leaves *whole
    classes* untouched — which is what lets non-strict transfer skip
    their global data entirely.  Methods therefore fill classes in
    call-graph-order bands, with a small probability of jumping to a
    different partially-filled class.
    """
    quotas = _distribute(
        spec.total_methods, [1.0] * spec.total_files
    )
    remaining = list(quotas)
    assignment: List[int] = []
    current = 0
    for _ in range(spec.total_methods):
        if remaining[current] <= 0 or rng.random() < 0.05:
            started = [
                index
                for index, count in enumerate(remaining)
                if count > 0 and count < quotas[index]
            ]
            if started and rng.random() < 0.35:
                current = rng.choice(started)
            else:
                current = next(
                    index
                    for index, count in enumerate(remaining)
                    if count > 0
                )
        assignment.append(current)
        remaining[current] -= 1
    # Method 0 is main and must live in the entry class (class 0).
    if assignment[0] != 0:
        swap = assignment.index(0)
        assignment[0], assignment[swap] = assignment[swap], assignment[0]
    return assignment


def _inflate_main(
    spec: BenchmarkSpec, sizes: List[int], class_of: Sequence[int]
) -> None:
    """Grow ``main`` to ``spec.main_fraction`` of its class.

    Instructions are taken from the entry class's other methods so
    class and program totals are unchanged.  Models programs whose
    first class is dominated by one huge procedure (the paper's
    TestDes), for which method-level non-strictness cannot shrink the
    invocation latency much.
    """
    if spec.main_fraction <= 0:
        return
    entry_methods = [
        index
        for index in range(spec.total_methods)
        if class_of[index] == 0
    ]
    entry_total = sum(sizes[index] for index in entry_methods)
    target = int(spec.main_fraction * entry_total)
    floor = 5
    for index in entry_methods:
        if index == 0:
            continue
        if sizes[0] >= target:
            break
        take = min(sizes[index] - floor, target - sizes[0])
        if take > 0:
            sizes[index] -= take
            sizes[0] += take


def _call_capacity(
    sizes: Sequence[int], loops_flags: Sequence[bool], index: int
) -> int:
    """How many 3-instruction call sites method ``index`` can emit.

    Mirrors :func:`_emit_body`'s budget: epilogue (2) plus the loop
    scaffold (prologue 2 + header 2 + latch 5) when the body loops,
    with each plain call costing 3 instructions.
    """
    reserved = 2
    if loops_flags[index] and sizes[index] >= 20:
        reserved += 9
    return max(0, (sizes[index] - reserved) // 3)


def _build_call_tree(
    rng: random.Random,
    count: int,
    sizes: List[int],
    loops_flags: Sequence[bool],
) -> List[List[int]]:
    """children[i] = methods whose first caller is i.

    The tree is built so that its depth-first traversal (children in
    creation order) is exactly ``0, 1, 2, ...`` — because in a real
    program the first-use order *is* the depth-first unfolding of the
    dynamic call tree, and that consistency is what gives the paper's
    static estimator its predictive power.  Each new method's parent is
    drawn from the current DFS spine (the entry, its active callee, and
    so on down), biased toward the deep end — like a program
    initializing subsystem after subsystem.

    Capacity-aware: a parent only takes children its body can host as
    3-instruction call sites (so every method stays statically
    reachable); if the whole spine is full, the deepest spine node is
    grown by one call site, paid for by trimming the largest method.
    """
    children: List[List[int]] = [[] for _ in range(count)]
    spine: List[int] = [0]
    for index in range(1, count):
        candidates = [
            node
            for node in spine
            if len(children[node])
            < _call_capacity(sizes, loops_flags, node)
        ]
        if not candidates:
            # Grow the deepest spine node's body by one call site and
            # reclaim the instructions from the largest method so the
            # program total stays calibrated.
            parent = spine[-1]
            donor = max(
                range(count),
                key=lambda i: sizes[i] if i != parent else -1,
            )
            take = min(3, max(0, sizes[donor] - 8))
            sizes[donor] -= take
            sizes[parent] += 3
        else:
            # Bias toward the deep end of the spine: a running program
            # mostly calls new code from where it currently is.
            weights = [
                (position + 1) ** 2
                for position in range(len(candidates))
            ]
            parent = rng.choices(candidates, weights=weights)[0]
        children[parent].append(index)
        spine = spine[: spine.index(parent) + 1] + [index]
    return children


def _balance_cold_sizes(
    spec: BenchmarkSpec,
    sizes: List[int],
    used: Set[int],
    min_sizes: Optional[Sequence[int]] = None,
) -> None:
    """Swap size draws so cold instructions match Table 2's % executed.

    The used/cold *membership* is positional (cold code clusters late),
    but the lognormal size draws are independent of position, so the
    cold set's instruction share can land off target — visibly so when
    only one or two methods are cold.  Swapping size values between a
    cold and a used method fixes the share without disturbing either
    the membership structure or the total instruction count.  Swaps
    respect each method's minimum size (its call sites must still fit).
    """
    total = sum(sizes)
    cold_target = (100.0 - spec.percent_static_executed) / 100.0 * total
    floors = list(min_sizes) if min_sizes else [5] * len(sizes)

    def swappable(donor: int, receiver: int) -> bool:
        return (
            sizes[receiver] >= floors[donor]
            and sizes[donor] >= floors[receiver]
        )

    cold = [index for index in range(len(sizes)) if index not in used]
    hot = [index for index in range(1, len(sizes)) if index in used]
    if not cold or not hot:
        return
    for _ in range(len(sizes)):
        cold_sum = sum(sizes[index] for index in cold)
        error = cold_sum - cold_target
        if abs(error) <= 0.02 * total:
            return
        if error > 0:
            donor = max(cold, key=lambda index: sizes[index])
            fits = [r for r in hot if swappable(donor, r)]
            if not fits:
                return
            receiver = min(fits, key=lambda index: sizes[index])
        else:
            donor = min(cold, key=lambda index: sizes[index])
            fits = [r for r in hot if swappable(donor, r)]
            if not fits:
                return
            receiver = max(fits, key=lambda index: sizes[index])
        improvement = abs(sizes[donor] - sizes[receiver])
        if improvement == 0 or improvement > 2 * abs(error):
            # Find the best partial swap instead of overshooting.
            best = None
            for candidate in hot:
                if not swappable(donor, candidate):
                    continue
                delta = sizes[donor] - sizes[candidate]
                if delta == 0:
                    continue
                if error > 0 and 0 <= delta <= 2 * error:
                    if best is None or delta > sizes[donor] - sizes[best]:
                        best = candidate
                if error < 0 and 2 * error <= delta <= 0:
                    if best is None or delta < sizes[donor] - sizes[best]:
                        best = candidate
            if best is None:
                return
            receiver = best
        sizes[donor], sizes[receiver] = sizes[receiver], sizes[donor]


def _inject_cold_parents(
    rng: random.Random,
    spec: BenchmarkSpec,
    children: List[List[int]],
    used: Set[int],
    sizes: Optional[Sequence[int]] = None,
    loops_flags: Optional[Sequence[bool]] = None,
    scg_rank: Optional[Dict[int, int]] = None,
) -> None:
    """Rewire a few used methods' call sites into the cold region.

    Models dispatch the static call graph cannot see (reflection,
    virtual calls): the method still runs early, but the static
    estimator only finds its call site inside a never-executed method
    just past the hot/cold boundary — so the SCG ordering places it
    late, while a profile places it correctly.
    """
    count = spec.total_methods
    cold = sorted(index for index in range(1, count) if index not in used)
    if len(cold) < max(12, int(0.04 * count)):
        # A near-total-coverage input leaves only a sliver of cold
        # code; hiding call sites inside it would force that sliver
        # (and any data it carries) into every prediction's prefix —
        # a pathology real programs with tiny cold sets do not show.
        return
    # Cold region just past the boundary: plausible homes with room
    # left for one more call site.  "Just past" is judged in static-
    # order space when the rank is available, so a victim's mispredicted
    # position lands near the hot/cold boundary rather than at the very
    # end of the stream.
    if scg_rank:
        by_rank = sorted(
            cold, key=lambda index: scg_rank.get(index, index)
        )
        near_cold = by_rank[: max(1, len(by_rank) // 4)]
    else:
        near_cold = cold[: max(1, len(cold) // 4)]
    if sizes is not None and loops_flags is not None:
        near_cold = [
            index
            for index in near_cold
            if len(children[index])
            < _call_capacity(sizes, loops_flags, index)
        ]
        if not near_cold:
            return
    # Victims are *leaves*: a reflectively-reached method with its own
    # statically-visible subtree would drag that whole subtree into the
    # cold region, overstating how wrong real static analysis gets.
    candidates = [
        index
        for index in sorted(used)
        if index > count // 10 and not children[index]
    ]
    rng.shuffle(candidates)
    victims = candidates[: max(1, int(0.015 * len(used)))]

    parent_of: Dict[int, int] = {}
    for parent, child_list in enumerate(children):
        for child in child_list:
            parent_of[child] = parent

    def is_descendant(node: int, ancestor: int) -> bool:
        current = node
        while current in parent_of:
            current = parent_of[current]
            if current == ancestor:
                return True
        return False

    for victim in victims:
        new_parent = rng.choice(near_cold)
        if victim in children[new_parent]:
            continue
        # Re-parenting under the victim's own descendant would detach
        # a cycle from the call tree (statically unreachable code).
        if new_parent == victim or is_descendant(new_parent, victim):
            continue
        if sizes is not None and loops_flags is not None:
            if len(children[new_parent]) >= _call_capacity(
                sizes, loops_flags, new_parent
            ):
                continue
        old_parent = parent_of.get(victim)
        if old_parent is not None:
            children[old_parent].remove(victim)
        children[new_parent].append(victim)
        parent_of[victim] = new_parent


def _choose_used(
    rng: random.Random,
    spec: BenchmarkSpec,
    sizes: Sequence[int],
    scg_rank: Optional[Dict[int, int]] = None,
) -> Set[int]:
    """Pick the set of methods the test input executes.

    Cold code clusters: in real programs, never-executed methods are
    predominantly the ones reached late (or not at all) by the static
    traversal — error handlers and rarely-taken features — which is why
    the paper's static estimator profits from ordering them last.  The
    selection is therefore strongly biased toward *early* call-graph
    positions, with enough scatter that the static estimator still
    mispredicts some of the time.  Sized so used static instructions
    match Table 2's '% executed' column.
    """
    target = spec.percent_static_executed / 100.0 * sum(sizes)
    count = spec.total_methods
    # Prefix by call-graph position, fuzzed only near the boundary: a
    # method well before the cut is used, well after it is cold, and a
    # band around it (3% of the program) goes either way.  At least one
    # method always stays cold (every real input leaves something out).
    band = max(2, int(0.03 * count))
    reserve = max(1, int(0.01 * count))
    # The reserved always-cold methods are the ones the static
    # estimator orders *last* (deepest statically-unreachable-looking
    # code), so concentrated cold data cannot ambush the prediction.
    if scg_rank:
        reserved = set(
            sorted(
                range(1, count),
                key=lambda index: scg_rank.get(index, index),
            )[-reserve:]
        )
    else:
        reserved = set(range(count - reserve, count))
    used = {0}
    used_instructions = sizes[0]
    cursor = 1
    while (
        used_instructions < target
        and cursor < count
        and len(used) < count - reserve
    ):
        if rng.random() < 0.5:
            index = cursor
            cursor += 1
        else:
            index = min(count - 1, cursor + rng.randrange(band))
        if index in used or index in reserved:
            cursor += 1 if index == cursor else 0
            continue
        used.add(index)
        used_instructions += sizes[index]
    # Sweep any boundary holes the fuzz left behind.
    for index in range(1, count):
        if used_instructions >= target:
            break
        if index not in used and index not in reserved:
            used.add(index)
            used_instructions += sizes[index]
    return used


def _emit_body(
    builder: CodeBuilder,
    rng: random.Random,
    plan: _MethodPlan,
    make_call_ref,
    ldc_constants: Sequence[Tuple[str, bool]],
    make_ldc_index,
    target_instructions: int,
    state_field_ref: Optional[int] = None,
) -> None:
    """Emit a verifiable body with exactly ``target_instructions``
    instructions.

    Layout: an optional counted loop wrapping the call sites (food for
    the static estimator's loop-priority heuristic), conditional
    wrappers around some calls, LDC references to this method's share
    of the global data, and balanced filler.  ``make_call_ref`` interns
    a callee's MethodRef lazily, so only emitted calls add pool
    entries.
    """
    emitted = 0

    def emit(opcode: Opcode, *operands: int) -> None:
        nonlocal emitted
        builder.emit(opcode, *operands)
        emitted += 1

    loop_label = None
    end_label = None
    # Instructions that must come after the main body.
    reserved = 2  # epilogue: load 0 + ireturn
    use_loop = plan.loops and target_instructions >= 20
    if use_loop:
        reserved += 5  # latch: load, iconst, sub, store, goto
        emit(Opcode.ICONST, 2 + rng.randrange(3))
        emit(Opcode.STORE, 1)
        loop_label = builder.new_label("loop")
        end_label = builder.new_label("end")
        builder.bind(loop_label)
        emit(Opcode.LOAD, 1)
        builder.branch(Opcode.IFLE, end_label)
        emitted += 1

    def room() -> int:
        return target_instructions - reserved - emitted

    for position, callee in enumerate(plan.resolved_children):
        # A conditional wrapper costs 5 instructions instead of 3;
        # never let it starve the calls still to come (every child must
        # keep its call site, or it goes statically unreachable).
        remaining_calls = len(plan.resolved_children) - position - 1
        conditional = (
            rng.random() < _CONDITIONAL_CALL_PROB
            and room() >= 5 + 3 * remaining_calls
        )
        cost = 5 if conditional else 3
        if room() < cost:
            break
        ref = make_call_ref(callee)
        if conditional:
            skip = builder.new_label("skip")
            emit(Opcode.LOAD, 0)
            builder.branch(Opcode.IFLE, skip)
            emitted += 1
            emit(Opcode.ICONST, rng.randrange(16))
            emit(Opcode.CALL, ref)
            emit(Opcode.POP)
            builder.bind(skip)
        else:
            emit(Opcode.ICONST, rng.randrange(16))
            emit(Opcode.CALL, ref)
            emit(Opcode.POP)

    for constant in ldc_constants:
        if room() < 2:
            break
        emit(Opcode.LDC, make_ldc_index(constant))
        emit(Opcode.POP)

    # Touch the class's state field so its FieldRef chain is live.
    if state_field_ref is not None and room() >= 2:
        emit(Opcode.GETSTATIC, state_field_ref)
        emit(Opcode.POP)

    # Hot code is compact (tight loops of short ops); cold code is
    # constant-laden and verbose — which is how real programs end up
    # with far more cold *bytes* than cold *instructions*.
    if plan.is_cold:
        while room() >= 2:
            emit(Opcode.ICONST, rng.randrange(256))
            emit(Opcode.POP)
        if room() == 1:
            emit(Opcode.NOP)
    else:
        while room() >= 1:
            emit(Opcode.NOP)

    if use_loop:
        emit(Opcode.LOAD, 1)
        emit(Opcode.ICONST, 1)
        emit(Opcode.SUB)
        emit(Opcode.STORE, 1)
        builder.branch(Opcode.GOTO, loop_label)
        emitted += 1
        builder.bind(end_label)

    emit(Opcode.LOAD, 0)
    emit(Opcode.IRETURN)


def _pad_string(rng: random.Random, length: int) -> str:
    alphabet = "abcdefghijklmnopqrstuvwxyzABCDEF/$_0123456789"
    return "".join(rng.choice(alphabet) for _ in range(length))


def _build_class(
    class_seed: float,
    spec: BenchmarkSpec,
    class_index: int,
    plans: Sequence[_MethodPlan],
    class_names: Sequence[str],
    ldc_plan: Optional[Dict[int, List[Tuple[str, bool]]]] = None,
):
    """Build one class; ``ldc_plan`` carries pass-2 padding constants.

    Every method gets its own RNG seeded from ``(class_seed, index)``,
    so a body is bit-identical across build passes regardless of what
    its siblings look like — which keeps the static estimator's view of
    the final program equal to the base pass's.
    """
    builder = ClassFileBuilder(class_names[class_index])
    builder.add_field(f"state{class_index}", initial_value=0)
    state_ref = builder.field_ref(
        class_names[class_index], f"state{class_index}"
    )
    for plan in plans:
        method_rng = random.Random(f"{class_seed}:{plan.index}")

        def make_call_ref(callee, _builder=builder):
            callee_class, callee_name = callee
            return _builder.method_ref(
                class_names[callee_class], callee_name, "(I)I"
            )

        ldc_constants: List[Tuple[str, bool]] = []
        if ldc_plan and plan.index in ldc_plan:
            ldc_constants = list(ldc_plan[plan.index])

        def make_ldc_index(constant, _builder=builder, _rng=method_rng):
            payload, is_int = constant
            if is_int:
                return _builder.constant_pool.add_integer(
                    _rng.randrange(2**31)
                )
            return _builder.add_string_constant(payload)
        body = CodeBuilder()
        descriptor = "()V" if plan.index == 0 else "(I)I"
        _emit_body(
            body,
            method_rng,
            plan,
            make_call_ref,
            ldc_constants,
            make_ldc_index,
            plan.instructions,
            state_field_ref=state_ref,
        )
        instructions = body.build()
        if plan.index == 0:
            # main is ()V: rewrite the epilogue to a plain return.
            instructions = instructions[:-2] + [
                instructions[-2].__class__(Opcode.RETURN)
            ]
        builder.add_method(
            plan.name,
            descriptor,
            instructions,
            max_stack=8,
            max_locals=4,
            local_data=b"\xd7" * plan.local_payload,
        )
    return builder


@lru_cache(maxsize=None)
def generate_workload(
    name: str, seed: Optional[int] = None
) -> SyntheticWorkload:
    """Generate (and cache) the calibrated workload for a benchmark.

    Args:
        name: A paper benchmark name (``BIT``, ``Hanoi``, ...).
        seed: Override the deterministic per-name seed.
    """
    spec = benchmark_spec(name)
    return _generate(spec, seed)


def paper_workload(spec: BenchmarkSpec) -> SyntheticWorkload:
    """Generate a workload for an arbitrary (possibly custom) spec."""
    return _generate(spec, None)


def _generate(
    spec: BenchmarkSpec, seed: Optional[int]
) -> SyntheticWorkload:
    rng = random.Random(
        seed if seed is not None else _stable_seed(spec.name)
    )
    sizes = _method_sizes(rng, spec)
    class_of = _assign_classes(rng, spec)
    _inflate_main(spec, sizes, class_of)
    loops_flags = [
        rng.random() < 0.7 for _ in range(spec.total_methods)
    ]
    children = _build_call_tree(
        rng, spec.total_methods, sizes, loops_flags
    )

    class_names = [
        f"{spec.name.lower()}/C{index}" for index in range(spec.total_files)
    ]
    method_names = [
        "main" if index == 0 else f"m{index}"
        for index in range(spec.total_methods)
    ]

    # Structural randomness is drawn ONCE and reused by every build
    # pass, so the base pass (which fixes the static estimator's view)
    # and the final pass produce identical call structure.
    # Call sites appear in slightly perturbed order so the static
    # estimator is good but not perfect.  Only call sites with *small*
    # subtrees are perturbed: the paper's loop-priority heuristics are
    # built to get the big branches right, so real estimation errors
    # are many-and-small, not whole-subsystem transpositions.
    subtree = [1] * spec.total_methods
    for index in range(spec.total_methods - 1, 0, -1):
        for child in children[index]:
            subtree[index] += subtree[child]
    for child in children[0]:
        subtree[0] += subtree[child]
    small = max(3, int(0.02 * spec.total_methods))
    call_orders: List[List[int]] = []
    for index in range(spec.total_methods):
        order = list(children[index])
        for position in range(len(order) - 1):
            if (
                rng.random() < 0.12
                and subtree[order[position]] <= small
                and subtree[order[position + 1]] <= small
            ):
                order[position], order[position + 1] = (
                    order[position + 1],
                    order[position],
                )
        call_orders.append(order)
    class_seeds = [rng.random() for _ in range(spec.total_files)]
    # Textual (source) order within a class is what the author wrote —
    # uncorrelated with first-use order.  Decided once; restructuring
    # re-sorts by first use anyway.
    textual_orders: List[List[int]] = [
        [] for _ in range(spec.total_files)
    ]
    for index in range(spec.total_methods):
        textual_orders[class_of[index]].append(index)
    for order in textual_orders:
        rng.shuffle(order)

    def make_plans(used_set):
        plan_of = {}
        for index in range(spec.total_methods):
            plan = _MethodPlan(
                index=index,
                class_index=class_of[index],
                name=method_names[index],
                instructions=sizes[index],
                children=list(call_orders[index]),
                loops=loops_flags[index],
                is_cold=(
                    used_set is not None and index not in used_set
                ),
            )
            plan.resolved_children = [
                (class_of[child], method_names[child])
                for child in call_orders[index]
            ]
            plan_of[index] = plan
        by_class = [
            [plan_of[index] for index in textual_orders[class_index]]
            for class_index in range(spec.total_files)
        ]
        return list(plan_of.values()), by_class

    def build_classes(by_class, ldc_plan=None):
        return [
            _build_class(
                class_seeds[class_index],
                spec,
                class_index,
                by_class[class_index],
                class_names,
                ldc_plan=ldc_plan,
            ).build()
            for class_index in range(spec.total_files)
        ]

    # ---- base pass: the exact static first-use rank -------------------
    # Payload, LDC padding, and filler flavour do not change branches or
    # call sites, so the base program's static order equals the final
    # program's (cold-parent injection, applied only to large cold sets,
    # perturbs it mildly).
    _, base_by_class = make_plans(None)
    base_program = Program(
        classes=build_classes(base_by_class),
        entry_point=MethodId(class_names[0], "main"),
    )
    base_order = estimate_first_use(base_program)
    name_to_index = {
        name: index for index, name in enumerate(method_names)
    }
    scg_rank = {
        name_to_index[method.method_name]: position
        for position, method in enumerate(base_order.order)
    }

    used = _choose_used(rng, spec, sizes, scg_rank)
    min_sizes = [
        2
        + (9 if loops_flags[index] and sizes[index] >= 20 else 0)
        + 3 * len(children[index])
        for index in range(spec.total_methods)
    ]
    _balance_cold_sizes(spec, sizes, used, min_sizes=min_sizes)
    _inject_cold_parents(
        rng,
        spec,
        call_orders,
        used,
        sizes,
        loops_flags,
        scg_rank=scg_rank,
    )

    plans, plans_by_class = make_plans(used)

    # ---- pass 1: skeleton classes, measure data composition ----------
    skeleton = build_classes(plans_by_class)

    # ---- calibrate padding against Table 9 targets ---------------------
    global_target = spec.global_data_kb * 1024 * spec.wire_scale
    class_weights = [
        max(1, len(plans_by_class[index]))
        * (
            2.0
            if plans_by_class[index]
            and all(plan.is_cold for plan in plans_by_class[index])
            else 1.0
        )
        for index in range(spec.total_files)
    ]
    global_per_class = _distribute(
        int(global_target), class_weights
    )
    ldc_plan: Dict[int, List[Tuple[str, bool]]] = {}
    field_padding: List[List[FieldInfo]] = []
    unused_padding: List[int] = []
    for class_index, classfile in enumerate(skeleton):
        partition = partition_class(classfile)
        target_total = global_per_class[class_index]
        first_deficit = int(
            spec.percent_globals_needed_first / 100 * target_total
            - partition.first_bytes
        )
        methods_deficit = int(
            spec.percent_globals_in_methods / 100 * target_total
            - partition.method_bytes
        )
        unused_deficit = int(
            spec.percent_globals_unused / 100 * target_total
            - partition.unused_bytes
        )
        fields: List[FieldInfo] = []
        field_number = 0
        while first_deficit > 20:
            name_length = min(40, max(4, first_deficit - 11))
            field_name = (
                f"f{class_index}_{field_number}_"
                + _pad_string(rng, max(1, name_length - 8))
            )
            fields.append(FieldInfo(name=field_name))
            # field_info (8) + Utf8 entry (3 + len).
            first_deficit -= 8 + 3 + len(field_name)
            field_number += 1
        field_padding.append(fields)

        class_plans = plans_by_class[class_index]
        if class_plans and methods_deficit > 0:
            # Share the deficit by how many LDC pairs each body can
            # actually host, so small methods are not over-assigned.
            # Cold methods carry more constant data per instruction
            # (unexercised features ship their tables and messages).
            rooms = [
                max(
                    0,
                    (plan.instructions - 4 - 3 * len(plan.children))
                    // 2,
                )
                * (1.0 if plan.index in used else 2.5)
                for plan in class_plans
            ]
            if sum(rooms) == 0:
                rooms = [1] * len(class_plans)
            shares = _distribute(methods_deficit, rooms)
            # int_constant_bias is a *byte*-share target (Table 8:
            # TestDes's pool is 53% integer bytes), so integer entries
            # (5 bytes each) are drawn until their running byte share
            # catches up with the target.
            int_bytes = 0
            string_bytes = 0
            for plan, share, pairs in zip(
                class_plans, shares, [int(r) for r in rooms]
            ):
                constants: List[Tuple[str, bool]] = []
                remaining = share
                pairs = max(1, pairs)
                per_pair = max(48, share // pairs + 1)
                while remaining > 4:
                    filled = int_bytes + string_bytes
                    if int_bytes < spec.int_constant_bias * (filled + 5):
                        constants.append(("", True))
                        int_bytes += 5
                        remaining -= 5
                    elif remaining > 8:
                        length = min(
                            400, max(4, min(per_pair, remaining) - 6)
                        )
                        constants.append(
                            (_pad_string(rng, length), False)
                        )
                        string_bytes += 6 + length
                        remaining -= 6 + length
                    else:
                        break
                # Emit big string entries first: bodies emit LDC pairs
                # until they run out of room, and a dropped 5-byte
                # integer costs far less fill than a dropped string.
                constants.sort(
                    key=lambda constant: len(constant[0]),
                    reverse=True,
                )
                ldc_plan[plan.index] = constants
        unused_padding.append(max(0, unused_deficit))

    # ---- local data payload calibration --------------------------------
    # Method unit bytes of the skeleton, plus the LDC pairs pass 2 adds
    # (an LDC+POP pair is 4 bytes and displaces a 6-byte ICONST+POP
    # pair, so padding constants shrink code by 2 bytes per pair) and
    # the 6-byte LocalData attribute header each payload introduces.
    skeleton_method_bytes = sum(
        class_layout(classfile).local_bytes for classfile in skeleton
    )
    ldc_pair_count = sum(
        len(constants) for constants in ldc_plan.values()
    )
    local_target = spec.local_data_kb * 1024 * spec.wire_scale
    payload_total = max(
        0,
        int(
            local_target
            - skeleton_method_bytes
            + 2 * ldc_pair_count
            - 6 * spec.total_methods
        ),
    )
    # Split the payload pool between hot and cold methods so that the
    # test input's *needed bytes* land on spec.percent_bytes_needed.
    wire_estimate = local_target + global_target
    cold_target_bytes = (
        (100.0 - spec.percent_bytes_needed) / 100.0 * wire_estimate
    )
    cold_plans = [plan for plan in plans if plan.is_cold]
    hot_plans = [plan for plan in plans if not plan.is_cold]
    cold_unit_bytes = 0
    for class_index, classfile in enumerate(skeleton):
        for plan in plans_by_class[class_index]:
            if plan.is_cold:
                # method_info framing + code (payload comes below).
                cold_unit_bytes += classfile.method(plan.name).size
    cold_class_globals = sum(
        global_per_class[class_index]
        for class_index in range(spec.total_files)
        if plans_by_class[class_index]
        and all(
            plan.is_cold for plan in plans_by_class[class_index]
        )
    )
    cold_payload_target = int(
        max(
            0,
            min(
                payload_total,
                cold_target_bytes
                - cold_unit_bytes
                - cold_class_globals,
            ),
        )
    )
    hot_payload_total = payload_total - cold_payload_target
    if cold_plans and cold_payload_target:
        # Weight heavily toward the latest (deepest-cold) methods: a
        # cold method near the hot/cold boundary may still be ordered
        # early by the static estimator, and loading it with data would
        # make the whole prediction useless.
        count = spec.total_methods
        for plan, share in zip(
            cold_plans,
            _distribute(
                cold_payload_target,
                [
                    plan.instructions
                    * (
                        0.05
                        + (
                            scg_rank.get(plan.index, plan.index)
                            / count
                        )
                        ** 4
                    )
                    for plan in cold_plans
                ],
            ),
        ):
            plan.local_payload = share
    if hot_plans and hot_payload_total:
        for plan, share in zip(
            hot_plans,
            _distribute(
                hot_payload_total,
                [plan.instructions for plan in hot_plans],
            ),
        ):
            plan.local_payload = share

    # ---- pass 2: final classes with padding ------------------------------
    classes = []
    for class_index, classfile in enumerate(
        build_classes(plans_by_class, ldc_plan=ldc_plan)
    ):
        classfile.fields += tuple(field_padding[class_index])
        remaining_unused = unused_padding[class_index]
        pad_number = 0
        while remaining_unused > 8:
            length = min(60, max(4, remaining_unused - 6))
            classfile.constant_pool.add_string(
                f"pad{pad_number}~" + _pad_string(rng, length)
            )
            remaining_unused -= 6 + length + 5
            pad_number += 1
        classes.append(classfile)

    # The on-disk class order is arbitrary in real programs (jar/dir
    # order), except that the entry class ships first (the paper: "the
    # first class file to execute ... is transferred first").  Shuffle
    # the rest so the no-reordering baseline is honest; restructuring
    # re-sorts classes by first use anyway.
    tail = classes[1:]
    rng.shuffle(tail)
    program = Program(
        classes=[classes[0]] + tail,
        entry_point=MethodId(class_names[0], "main"),
    )

    # ---- traces -------------------------------------------------------------
    method_ids = [
        MethodId(class_names[class_of[index]], method_names[index])
        for index in range(spec.total_methods)
    ]
    test_trace = _build_trace(
        random.Random(rng.random()),
        spec.dynamic_instructions_test,
        sorted(used),
        sizes,
        method_ids,
        span=spec.first_use_span,
    )
    train_used = _train_used(rng, used, spec)
    train_trace = _build_trace(
        random.Random(rng.random()),
        spec.dynamic_instructions_train,
        train_used,
        sizes,
        method_ids,
        span=spec.first_use_span,
    )
    return SyntheticWorkload(
        spec=spec,
        program=program,
        test_trace=test_trace,
        train_trace=train_trace,
    )


def _stable_seed(name: str) -> int:
    value = 0
    for char in name:
        value = (value * 131 + ord(char)) % (2**31)
    return value


def _train_used(
    rng: random.Random, used: Set[int], spec: BenchmarkSpec
) -> List[int]:
    """The train input's method set: mostly the test set, minus a slice.

    The train input is smaller, so late methods are more likely to be
    missing; the overlap models the paper's Train-vs-Test fidelity gap.
    """
    ordered = sorted(used)
    train: List[int] = []
    for position, index in enumerate(ordered):
        drop_probability = 0.01 + 0.06 * position / max(
            1, len(ordered) - 1
        )
        if index == 0 or rng.random() > drop_probability:
            train.append(index)
    # A handful of order perturbations: input-dependent control flow.
    for position in range(1, len(train) - 1):
        if rng.random() < 0.06:
            train[position], train[position + 1] = (
                train[position + 1],
                train[position],
            )
    return train


def _build_trace(
    rng: random.Random,
    total_instructions: int,
    used_order: Sequence[int],
    sizes: Sequence[int],
    method_ids: Sequence[MethodId],
    span: float = 0.05,
) -> ExecutionTrace:
    """Assemble a trace: first uses spread over the run, then a drain.

    Per-method dynamic budgets are proportional to static size times a
    lognormal reuse factor, with the entry method boosted (it is the
    driver loop).  Each first use executes a fraction of its budget,
    interleaved with revisits of earlier methods, and the remaining
    budgets drain after the last first use — matching the familiar
    profile of initialization touching many methods early and a
    compute loop dominating the tail.
    """
    if not used_order:
        raise WorkloadError("trace needs at least one used method")
    reuse = {
        index: rng.lognormvariate(0.0, 1.0) for index in used_order
    }
    reuse[used_order[0]] *= 6.0  # main keeps running throughout
    budgets = dict(
        zip(
            used_order,
            _distribute(
                total_instructions,
                [sizes[i] * reuse[i] for i in used_order],
            ),
        )
    )
    for index in used_order:
        # A first use by definition executes at least one instruction.
        budgets[index] = max(1, budgets[index])
    segments: List[TraceSegment] = []
    started: List[int] = []

    def emit(index: int, count: int) -> None:
        count = min(count, budgets[index])
        if count > 0:
            segments.append(
                TraceSegment(method_ids[index], count)
            )
            budgets[index] -= count

    # Startup burst: all first uses happen within `span` of the total
    # execution; half that window goes to the first-use chunks, half to
    # interleaved revisits of already-started methods.
    span_budget = int(span * total_instructions)
    first_chunks = _distribute(
        max(len(used_order), span_budget // 2),
        [max(1.0, budgets[index]) for index in used_order],
    )
    gap_budget = max(0, span_budget // 2)
    gaps = _distribute(
        gap_budget, [1.0 + rng.random() for _ in used_order]
    )
    for position, index in enumerate(used_order):
        emit(index, max(1, first_chunks[position]))
        started.append(index)
        remaining_gap = gaps[position]
        attempts = 0
        while remaining_gap > 0 and attempts < 4:
            revisit = started[
                int(len(started) * rng.random() ** 2)
            ]  # biased toward early methods (the driver loop)
            before = budgets[revisit]
            emit(revisit, remaining_gap)
            remaining_gap -= before - budgets[revisit]
            attempts += 1

    # Main phase: drain remaining budgets in interleaved passes.
    active = [index for index in used_order if budgets[index] > 0]
    while active:
        rng.shuffle(active)
        for index in active:
            emit(index, max(1, budgets[index] // 2))
        active = [index for index in active if budgets[index] > 0]
    return ExecutionTrace(segments=segments)
