"""Benchmark specifications: the published statistics of the six
programs (paper Tables 1, 2, 3, and 9).

The original 1998 binaries (BIT, Hanoi, JavaCup, Jess, JHLZip, TestDes,
compiled with DEC's JDK 1.12beta) are unobtainable, so the synthetic
generator (:mod:`repro.workloads.synthetic`) reproduces each program's
*published statistics* — file count, size, method count, dynamic and
static instruction counts, CPI, and the global-data breakdown — and the
experiments run against those calibrated equivalents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import WorkloadError

__all__ = ["BenchmarkSpec", "PAPER_BENCHMARKS", "benchmark_spec"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Published statistics for one benchmark.

    Attributes:
        name: Benchmark name as in Table 1.
        description: Table 1's one-line description.
        kind: ``"application"`` or ``"applet"``.
        total_files: Class file count (Table 2).
        size_kb: Application size in KB (Table 2).
        dynamic_instructions_test: Dynamic bytecodes, test input.
        dynamic_instructions_train: Dynamic bytecodes, train input.
        static_instructions: Static bytecode count.
        percent_static_executed: % of static instructions executed
            (test input, Table 2).
        total_methods: Method count (Table 2).
        cpi: Average Alpha cycles per bytecode (Table 3).
        local_data_kb: Method-local data in KB (Table 9).
        global_data_kb: Global data in KB (Table 9).
        percent_globals_needed_first: Table 9 column.
        percent_globals_in_methods: Table 9 column.
        percent_globals_unused: Table 9 column.
        int_constant_bias: Fraction of generated in-method constants
            that are integers rather than strings (Table 8 flavour:
            TestDes's pool is 53% integers, most others are ~1–2%).
        percent_bytes_needed: Percent of the program's wire bytes the
            test input actually needs (used method units plus the
            global data of touched classes).  The paper never tabulates
            this, but its Tables 6/7 normalized times imply it
            directly — and imply that unused *bytes* far exceed unused
            *instructions* (cold methods carry their tables, messages,
            and resources).  The generator distributes method-local
            payload and constants to cold methods to hit this figure.
        main_fraction: When positive, the entry method is inflated to
            this fraction of its class's instructions.  Reproduces the
            paper's TestDes anomaly: its first class is essentially one
            huge procedure, so non-strict execution barely reduces its
            invocation latency (Table 4's "(1)" row).
        first_use_span: Fraction of the test execution over which first
            uses are spread.  The paper's per-program results imply a
            startup burst (span well under 10%): essentially all of a
            program's first uses happen during initialization, with the
            compute loop running afterwards.
        transfer_mcycles_t1: Millions of cycles to transfer the whole
            program over the T1 link (Table 3).  Note the paper's own
            numbers imply roughly twice the wire bytes of Table 2/9's
            sizes (protocol and runtime overheads it never itemizes);
            since the transfer cycles drive every results table, the
            generator calibrates total wire bytes to *this* figure and
            scales Table 9's byte columns proportionally, preserving
            all percentage splits.
    """

    name: str
    description: str
    kind: str
    total_files: int
    size_kb: float
    dynamic_instructions_test: int
    dynamic_instructions_train: int
    static_instructions: int
    percent_static_executed: float
    total_methods: int
    cpi: float
    local_data_kb: float
    global_data_kb: float
    percent_globals_needed_first: float
    percent_globals_in_methods: float
    percent_globals_unused: float
    int_constant_bias: float = 0.02
    transfer_mcycles_t1: float = 0.0
    percent_bytes_needed: float = 60.0
    first_use_span: float = 0.05
    main_fraction: float = 0.0

    @property
    def instructions_per_method(self) -> float:
        return self.static_instructions / self.total_methods

    @property
    def wire_scale(self) -> float:
        """Factor scaling Table 9 byte targets to Table 3 wire bytes."""
        if self.transfer_mcycles_t1 <= 0:
            return 1.0
        implied_kb = self.transfer_mcycles_t1 * 1e6 / 3815.0 / 1024.0
        return implied_kb / (self.local_data_kb + self.global_data_kb)

    @property
    def methods_per_class(self) -> float:
        return self.total_methods / self.total_files

    def __post_init__(self) -> None:
        if self.total_files < 1 or self.total_methods < 1:
            raise WorkloadError(f"{self.name}: empty benchmark spec")
        percentages = (
            self.percent_globals_needed_first
            + self.percent_globals_in_methods
            + self.percent_globals_unused
        )
        if not 95.0 <= percentages <= 105.0:
            raise WorkloadError(
                f"{self.name}: Table 9 percentages sum to {percentages}"
            )


#: The six benchmarks, columns transcribed from Tables 1, 2, 3, and 9.
PAPER_BENCHMARKS: Tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(
        name="BIT",
        description=(
            "Bytecode Instrumentation Tool: instruments each basic "
            "block of its input program"
        ),
        kind="application",
        total_files=48,
        size_kb=124,
        dynamic_instructions_test=7_763_000,
        dynamic_instructions_train=5_582_000,
        static_instructions=10_800,
        percent_static_executed=66,
        total_methods=643,
        cpi=147,
        local_data_kb=43.9,
        global_data_kb=56.9,
        percent_globals_needed_first=34,
        percent_globals_in_methods=63,
        percent_globals_unused=3,
        transfer_mcycles_t1=776,
        percent_bytes_needed=58,
        first_use_span=0.04,
    ),
    BenchmarkSpec(
        name="Hanoi",
        description=(
            "Towers of Hanoi puzzle solver applet (6 and 8 rings)"
        ),
        kind="applet",
        total_files=3,
        size_kb=6,
        dynamic_instructions_test=329_000,
        dynamic_instructions_train=68_000,
        static_instructions=400,
        percent_static_executed=85,
        total_methods=58,
        cpi=3830,
        local_data_kb=1.8,
        global_data_kb=3.1,
        percent_globals_needed_first=21,
        percent_globals_in_methods=75,
        percent_globals_unused=4,
        transfer_mcycles_t1=27,
        percent_bytes_needed=85,
        first_use_span=0.08,
    ),
    BenchmarkSpec(
        name="JavaCup",
        description="LALR parser generator (simple math grammar)",
        kind="application",
        total_files=35,
        size_kb=139,
        dynamic_instructions_test=318_000,
        dynamic_instructions_train=126_000,
        static_instructions=14_800,
        percent_static_executed=81,
        total_methods=843,
        cpi=1241,
        local_data_kb=53.9,
        global_data_kb=59.4,
        percent_globals_needed_first=17,
        percent_globals_in_methods=82,
        percent_globals_unused=1,
        transfer_mcycles_t1=988,
        percent_bytes_needed=50,
        first_use_span=0.04,
    ),
    BenchmarkSpec(
        name="Jess",
        description="Expert system shell solving rule-based puzzles",
        kind="application",
        total_files=97,
        size_kb=266,
        dynamic_instructions_test=3_116_000,
        dynamic_instructions_train=270_000,
        static_instructions=15_100,
        percent_static_executed=47,
        total_methods=1568,
        cpi=225,
        local_data_kb=93.8,
        global_data_kb=129.9,
        percent_globals_needed_first=19,
        percent_globals_in_methods=61,
        percent_globals_unused=20,
        transfer_mcycles_t1=1885,
        percent_bytes_needed=52,
        first_use_span=0.03,
    ),
    BenchmarkSpec(
        name="JHLZip",
        description="PKZip-format archive generator",
        kind="application",
        total_files=7,
        size_kb=35,
        dynamic_instructions_test=2_380_000,
        dynamic_instructions_train=1_023_000,
        static_instructions=4_000,
        percent_static_executed=76,
        total_methods=186,
        cpi=82,
        local_data_kb=15.1,
        global_data_kb=12.0,
        percent_globals_needed_first=19,
        percent_globals_in_methods=79,
        percent_globals_unused=2,
        int_constant_bias=0.18,
        transfer_mcycles_t1=258,
        percent_bytes_needed=52,
        first_use_span=0.03,
    ),
    BenchmarkSpec(
        name="TestDes",
        description="DES encryption/decryption of a string",
        kind="application",
        total_files=3,
        size_kb=50,
        dynamic_instructions_test=310_000,
        dynamic_instructions_train=303_000,
        static_instructions=8_900,
        percent_static_executed=98,
        total_methods=51,
        cpi=484,
        local_data_kb=29.7,
        global_data_kb=5.0,
        percent_globals_needed_first=15,
        percent_globals_in_methods=84,
        percent_globals_unused=1,
        int_constant_bias=0.55,
        transfer_mcycles_t1=306,
        percent_bytes_needed=62,
        first_use_span=0.06,
        main_fraction=0.95,
    ),
)

_BY_NAME: Dict[str, BenchmarkSpec] = {
    spec.name: spec for spec in PAPER_BENCHMARKS
}


def benchmark_spec(name: str) -> BenchmarkSpec:
    """Look up a paper benchmark by name.

    Raises:
        WorkloadError: For unknown names.
    """
    try:
        return _BY_NAME[name]
    except KeyError as exc:
        raise WorkloadError(
            f"unknown benchmark {name!r}; known: {sorted(_BY_NAME)}"
        ) from exc
