"""Small hand-built programs used in tests, docs, and examples.

:func:`figure1_program` reconstructs the running example of the paper
(Figures 1–5): Class A with ``main``, ``Foo_A``, ``Bar_A`` and global
data; Class B with ``Foo_B``, ``Bar_B`` and global data.  The call
structure makes the first-use order ``main, Bar_B, Bar_A, Foo_A,
Foo_B`` — different from the textual order — so restructuring visibly
changes the layout, as in Figure 3.
"""

from __future__ import annotations


from ..bytecode import CodeBuilder, Opcode
from ..classfile import ClassFileBuilder
from ..program import MethodId, Program

__all__ = [
    "figure1_program",
    "countdown_program",
    "fibonacci_program",
    "mutual_recursion_program",
]


def _count_loop(builder: CodeBuilder, counter_slot: int, body) -> None:
    """Emit ``while (local[slot] > 0) { body(); local[slot] -= 1 }``."""
    loop = builder.new_label("loop")
    done = builder.new_label("done")
    builder.bind(loop)
    builder.emit(Opcode.LOAD, counter_slot)
    builder.branch(Opcode.IFLE, done)
    body()
    builder.emit(Opcode.LOAD, counter_slot)
    builder.emit(Opcode.ICONST, 1)
    builder.emit(Opcode.SUB)
    builder.emit(Opcode.STORE, counter_slot)
    builder.branch(Opcode.GOTO, loop)
    builder.bind(done)


def figure1_program() -> Program:
    """The paper's two-class example application.

    Class A: global data (fields), ``main``, ``Foo_A``, ``Bar_A`` (in
    textual order, like Figure 1).  Class B: global data, ``Foo_B``,
    ``Bar_B``.  Dynamically: ``main`` loops then calls ``Bar_B``;
    ``Bar_B`` loops then calls ``Bar_A``; ``Bar_A`` calls ``Foo_A``;
    ``Foo_A`` calls ``Foo_B``.
    """
    a = ClassFileBuilder("A")
    b = ClassFileBuilder("B")
    a.add_field("a_total", initial_value=0)
    a.add_field("a_seed", initial_value=7)
    b.add_field("b_total", initial_value=0)

    # --- Class A methods, in Figure 1 textual order -------------------
    main = CodeBuilder()
    main.emit(Opcode.ICONST, 25)
    main.emit(Opcode.STORE, 0)
    _count_loop(
        main,
        0,
        lambda: (
            main.emit(Opcode.GETSTATIC, a.field_ref("A", "a_total")),
            main.emit(Opcode.ICONST, 1),
            main.emit(Opcode.ADD),
            main.emit(Opcode.PUTSTATIC, a.field_ref("A", "a_total")),
        ),
    )
    main.emit(Opcode.ICONST, 9)
    main.emit(Opcode.CALL, a.method_ref("B", "Bar_B", "(I)I"))
    main.emit(Opcode.POP)
    main.emit(Opcode.RETURN)

    foo_a = CodeBuilder()
    foo_a.emit(Opcode.LOAD, 0)
    foo_a.emit(Opcode.CALL, a.method_ref("B", "Foo_B", "(I)I"))
    foo_a.emit(Opcode.ICONST, 3)
    foo_a.emit(Opcode.ADD)
    foo_a.emit(Opcode.IRETURN)

    bar_a = CodeBuilder()
    bar_a.emit(Opcode.LOAD, 0)
    bar_a.emit(Opcode.ICONST, 2)
    bar_a.emit(Opcode.MUL)
    bar_a.emit(Opcode.CALL, a.method_ref("A", "Foo_A", "(I)I"))
    bar_a.emit(Opcode.IRETURN)

    a.add_method("main", "()V", main.build(), local_data=b"A-main-data!")
    a.add_method("Foo_A", "(I)I", foo_a.build(), local_data=b"FooA")
    a.add_method("Bar_A", "(I)I", bar_a.build(), local_data=b"BarA-dat")

    # --- Class B methods ------------------------------------------------
    foo_b = CodeBuilder()
    foo_b.emit(Opcode.LOAD, 0)
    foo_b.emit(Opcode.GETSTATIC, b.field_ref("B", "b_total"))
    foo_b.emit(Opcode.ADD)
    foo_b.emit(Opcode.IRETURN)

    bar_b = CodeBuilder()
    bar_b.emit(Opcode.LOAD, 0)
    bar_b.emit(Opcode.STORE, 1)
    _count_loop(
        bar_b,
        1,
        lambda: (
            bar_b.emit(Opcode.GETSTATIC, b.field_ref("B", "b_total")),
            bar_b.emit(Opcode.ICONST, 2),
            bar_b.emit(Opcode.ADD),
            bar_b.emit(Opcode.PUTSTATIC, b.field_ref("B", "b_total")),
        ),
    )
    bar_b.emit(Opcode.LOAD, 0)
    bar_b.emit(Opcode.CALL, b.method_ref("A", "Bar_A", "(I)I"))
    bar_b.emit(Opcode.IRETURN)

    b.add_method("Foo_B", "(I)I", foo_b.build(), local_data=b"FooB-local")
    b.add_method("Bar_B", "(I)I", bar_b.build(), local_data=b"BarB")

    return Program(
        classes=[a.build(), b.build()],
        entry_point=MethodId("A", "main"),
    )


def countdown_program(start: int = 10) -> Program:
    """One class, one method: count ``start`` down to zero."""
    builder = ClassFileBuilder("Countdown")
    code = CodeBuilder()
    code.emit(Opcode.ICONST, start)
    code.emit(Opcode.STORE, 0)
    _count_loop(code, 0, lambda: None)
    code.emit(Opcode.RETURN)
    builder.add_method("main", "()V", code.build())
    return Program(classes=[builder.build()])


def fibonacci_program(n: int = 12) -> Program:
    """Recursive Fibonacci: exercises call/return and branching."""
    builder = ClassFileBuilder("Fib")
    fib_ref = builder.method_ref("Fib", "fib", "(I)I")

    main = CodeBuilder()
    main.emit(Opcode.ICONST, n)
    main.emit(Opcode.CALL, fib_ref)
    main.emit(Opcode.PUTSTATIC, builder.field_ref("Fib", "result"))
    main.emit(Opcode.RETURN)

    fib = CodeBuilder()
    recurse = fib.new_label("recurse")
    fib.emit(Opcode.LOAD, 0)
    fib.emit(Opcode.ICONST, 2)
    fib.branch(Opcode.IF_ICMPGE, recurse)
    fib.emit(Opcode.LOAD, 0)
    fib.emit(Opcode.IRETURN)
    fib.bind(recurse)
    fib.emit(Opcode.LOAD, 0)
    fib.emit(Opcode.ICONST, 1)
    fib.emit(Opcode.SUB)
    fib.emit(Opcode.CALL, fib_ref)
    fib.emit(Opcode.LOAD, 0)
    fib.emit(Opcode.ICONST, 2)
    fib.emit(Opcode.SUB)
    fib.emit(Opcode.CALL, fib_ref)
    fib.emit(Opcode.ADD)
    fib.emit(Opcode.IRETURN)

    builder.add_field("result")
    builder.add_method("main", "()V", main.build())
    builder.add_method("fib", "(I)I", fib.build())
    return Program(classes=[builder.build()])


def mutual_recursion_program(depth: int = 16) -> Program:
    """Two classes whose methods call each other alternately."""
    even = ClassFileBuilder("Even")
    odd = ClassFileBuilder("Odd")

    def parity_method(
        builder: ClassFileBuilder,
        name: str,
        other_class: str,
        other_name: str,
        result_when_zero: int,
    ) -> None:
        code = CodeBuilder()
        recurse = code.new_label("recurse")
        code.emit(Opcode.LOAD, 0)
        code.branch(Opcode.IFNE, recurse)
        code.emit(Opcode.ICONST, result_when_zero)
        code.emit(Opcode.IRETURN)
        code.bind(recurse)
        code.emit(Opcode.LOAD, 0)
        code.emit(Opcode.ICONST, 1)
        code.emit(Opcode.SUB)
        code.emit(
            Opcode.CALL,
            builder.method_ref(other_class, other_name, "(I)I"),
        )
        code.emit(Opcode.IRETURN)
        builder.add_method(name, "(I)I", code.build())

    main = CodeBuilder()
    main.emit(Opcode.ICONST, depth)
    main.emit(Opcode.CALL, even.method_ref("Even", "is_even", "(I)I"))
    main.emit(Opcode.PUTSTATIC, even.field_ref("Even", "answer"))
    main.emit(Opcode.RETURN)
    even.add_field("answer")
    even.add_method("main", "()V", main.build())
    parity_method(even, "is_even", "Odd", "is_odd", 1)
    parity_method(odd, "is_odd", "Even", "is_even", 0)

    return Program(
        classes=[even.build(), odd.build()],
        entry_point=MethodId("Even", "main"),
    )
