"""Workloads: example programs, benchmark specs, synthetic generator."""

from .examples import (
    countdown_program,
    fibonacci_program,
    figure1_program,
    mutual_recursion_program,
)

__all__ = [
    "countdown_program",
    "fibonacci_program",
    "figure1_program",
    "mutual_recursion_program",
]
