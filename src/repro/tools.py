"""repro-inspect: a command-line toolbox over stored programs.

Subcommands (all operate on a program directory written by
:func:`repro.storage.save_program`):

* ``disasm DIR CLASS [METHOD]`` — disassemble a method (or list them);
* ``layout DIR`` — per-class byte layout (global vs per-method units);
* ``partition DIR`` — Table-9-style global data split per class;
* ``order DIR`` — the static first-use order;
* ``verify DIR`` — run the full verifier over every class;
* ``lint DIR`` (or ``lint --workload NAME``) — run every static
  analysis rule (typed dataflow, transfer-plan stall/deadlock proofs,
  dead methods) and export findings as SARIF 2.1.0 / JSON; exits
  nonzero when a finding at or above ``--fail-on`` is present;
* ``interproc DIR`` (or ``interproc --workload NAME``) — summarize the
  interprocedural weighted call-graph analysis: reachable vs dead
  methods, devirtualized (monomorphic) call-site share, the
  top-weighted call edges, and dead-method prune savings;
* ``simulate DIR TRACE --link {t1,modem} --cpi N`` — co-simulate a
  stored trace against strict and non-strict transfer; with
  ``--links SPEC`` (comma-separated ``t1``/``modem``/bits-per-second
  tokens) the non-strict run stripes transfer units across every
  listed link through :mod:`repro.sched` under ``--sched-policy``;
* ``trace DIR TRACE --out trace.json`` — run one traced configuration
  (simulated cycles, or ``--netserve`` for real sockets) and export
  the unified event stream as a Chrome-loadable trace, JSON-lines,
  and/or an ASCII ``--timeline``;
* ``serve DIR --port N --bandwidth B`` — serve the program's transfer
  units over real TCP (see :mod:`repro.netserve`);
* ``fetch HOST PORT [TRACE]`` — fetch a served program non-strictly
  and, with a trace, replay it against the real arrivals;
* ``loadtest DIR`` (or ``loadtest --workload NAME``) — run a
  fleet-scale sweep of clients × bandwidth × fault plans against an
  in-process server and report p50/p99/p999 first-invocation latency
  plus plan-cache hit rates; ``--out BENCH_serve.json`` persists the
  run table (see :mod:`repro.netserve.loadgen`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from .classfile import class_layout
from .core import run_nonstrict, run_strict, strict_baseline
from .datapart import partition_class
from .errors import ReproError
from .linker import verify_class
from .reorder import estimate_first_use
from .sched import POLICIES as _SCHED_POLICIES
from .storage import load_program, load_trace
from .transfer import MODEM_LINK, T1_LINK, lossy_link

__all__ = ["main"]

_LINKS = {"t1": T1_LINK, "modem": MODEM_LINK}


def _parse_links(spec: str):
    """Parse a ``--links`` spec into a tuple of network links.

    Each comma-separated token is a named link (``t1``, ``modem``) or
    a bandwidth in bits/second (e.g. ``57600``).
    """
    from .transfer import link_from_bandwidth

    links = []
    for index, raw in enumerate(spec.split(",")):
        token = raw.strip()
        if token in _LINKS:
            links.append(_LINKS[token])
            continue
        try:
            bps = float(token)
        except ValueError:
            raise ReproError(
                f"bad --links token {token!r}: expected "
                f"{'/'.join(sorted(_LINKS))} or a bits-per-second number"
            ) from None
        links.append(
            link_from_bandwidth(f"link{index}@{bps:g}bps", bps)
        )
    if not links:
        raise ReproError("--links needs at least one link")
    return tuple(links)


def _cmd_disasm(arguments) -> int:
    from .bytecode import disassemble

    program = load_program(arguments.directory)
    classfile = program.class_named(arguments.class_name)
    if arguments.method is None:
        for method in classfile.methods:
            print(
                f"{method.name}{method.descriptor}  "
                f"[{len(method.instructions)} instructions, "
                f"{method.size} bytes]"
            )
        return 0
    method = classfile.method(arguments.method)
    print(f"; {classfile.name}.{method.name}{method.descriptor}")
    print(disassemble(method.instructions), end="")
    return 0


def _cmd_layout(arguments) -> int:
    program = load_program(arguments.directory)
    for classfile in program.classes:
        layout = class_layout(classfile)
        print(
            f"{classfile.name}: {layout.strict_size} bytes "
            f"(global {layout.global_size}, "
            f"{len(layout.method_sizes)} methods)"
        )
        if arguments.verbose:
            for name, size in layout.method_sizes:
                print(f"  {name}: {size} bytes")
    return 0


def _cmd_partition(arguments) -> int:
    print(
        f"{'class':30} {'first':>8} {'methods':>8} {'unused':>8}"
    )
    program = load_program(arguments.directory)
    for classfile in program.classes:
        partition = partition_class(classfile)
        percentages = partition.percentages()
        print(
            f"{classfile.name:30} "
            f"{percentages['needed_first']:7.1f}% "
            f"{percentages['in_methods']:7.1f}% "
            f"{percentages['unused']:7.1f}%"
        )
    return 0


def _cmd_order(arguments) -> int:
    program = load_program(arguments.directory)
    order = estimate_first_use(program)
    for position, entry in enumerate(order.entries):
        print(
            f"{position:4}  {entry.method}  "
            f"(bytes before: {entry.bytes_before})"
        )
    return 0


def _cmd_verify(arguments) -> int:
    program = load_program(arguments.directory)
    failures = 0
    for classfile in program.classes:
        try:
            verify_class(classfile)
            print(f"OK    {classfile.name}")
        except ReproError as error:
            failures += 1
            print(f"FAIL  {classfile.name}: {error}")
    return 1 if failures else 0


def _cmd_lint(arguments) -> int:
    import json

    from .analyze import Severity, run_lint, sarif_dumps, to_json
    from .observe import MetricsRegistry

    if (arguments.directory is None) == (arguments.workload is None):
        print(
            "error: give either a program directory or --workload NAME",
            file=sys.stderr,
        )
        return 2
    trace = None
    if arguments.workload is not None:
        from .workloads.spec import benchmark_spec
        from .workloads.synthetic import paper_workload

        workload = paper_workload(benchmark_spec(arguments.workload))
        program = workload.program
        trace = workload.test_trace
        cpi = workload.cpi if arguments.cpi is None else arguments.cpi
    else:
        program = load_program(arguments.directory)
        cpi = 30.0 if arguments.cpi is None else arguments.cpi
    if arguments.trace:
        trace = load_trace(arguments.trace)

    metrics = MetricsRegistry()
    report = run_lint(
        program,
        link=_LINKS[arguments.link],
        cpi=cpi,
        trace=trace,
        metrics=metrics,
    )
    severities = {
        severity.value: count
        for severity, count in sorted(
            report.by_severity().items(), key=lambda kv: kv[0].value
        )
    }
    model = "trace" if trace is not None else "static"
    print(
        f"analyzed {report.methods_analyzed} methods in "
        f"{report.runtime_seconds * 1e3:.1f} ms ({model} model)"
    )
    for note in report.notes:
        print(f"note: {note}")
    for finding in report.findings:
        print(
            f"{finding.severity.value:7s} {finding.rule_id:22s} "
            f"{finding.span.qualified_name}: {finding.message}"
        )
    print(f"findings: {severities or 'none'}")
    if arguments.sarif:
        Path(arguments.sarif).write_text(sarif_dumps(report))
        print(f"sarif:    {arguments.sarif}")
    if arguments.json:
        Path(arguments.json).write_text(
            json.dumps(to_json(report), indent=2, sort_keys=True)
        )
        print(f"json:     {arguments.json}")
    # --fail-on names the least severe level that still fails the run;
    # "note" is SARIF's name for INFO-level findings.
    failing = {
        "error": (Severity.ERROR,),
        "warning": (Severity.ERROR, Severity.WARNING),
        "note": (Severity.ERROR, Severity.WARNING, Severity.INFO),
    }[arguments.fail_on]
    return (
        1
        if any(finding.severity in failing for finding in report.findings)
        else 0
    )


def _cmd_interproc(arguments) -> int:
    import json

    from .analyze import analyze_interproc, prune_dead_methods

    if (arguments.directory is None) == (arguments.workload is None):
        print(
            "error: give either a program directory or --workload NAME",
            file=sys.stderr,
        )
        return 2
    if arguments.workload is not None:
        from .workloads.spec import benchmark_spec
        from .workloads.synthetic import paper_workload

        program = paper_workload(
            benchmark_spec(arguments.workload)
        ).program
    else:
        program = load_program(arguments.directory)

    analysis = analyze_interproc(program)
    pruned = prune_dead_methods(program, analysis=analysis)
    total = len(list(program.method_ids()))
    feasible = [site for site in analysis.call_sites if site.feasible]
    monomorphic = analysis.monomorphic_sites
    share = 100.0 * len(monomorphic) / len(feasible) if feasible else 0.0
    top_edges = sorted(
        analysis.edge_weights.items(),
        key=lambda item: (-item[1], str(item[0].caller), str(item[0].callee)),
    )[: arguments.top]

    payload = {
        "entry": str(analysis.entry),
        "methods": total,
        "reachable": len(analysis.reachable),
        "dead": len(analysis.dead),
        "call_sites": len(analysis.call_sites),
        "feasible_sites": len(feasible),
        "monomorphic_sites": len(monomorphic),
        "monomorphic_pct": round(share, 1),
        "torn_sites": len(analysis.torn_sites),
        "external_sites": len(analysis.external_sites),
        "prune_bytes_saved": pruned.bytes_saved,
        "pruned_methods": [str(m) for m in pruned.pruned],
        "top_edges": [
            {
                "caller": str(edge.caller),
                "callee": str(edge.callee),
                "weight": round(weight, 3),
            }
            for edge, weight in top_edges
        ],
    }
    if arguments.json:
        Path(arguments.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True)
        )
        print(f"json:     {arguments.json}")
        return 0
    print(f"entry:             {payload['entry']}")
    print(
        f"reachable:         {payload['reachable']}/{total} methods "
        f"({payload['dead']} dead)"
    )
    print(
        f"call sites:        {payload['call_sites']} "
        f"({payload['feasible_sites']} feasible, "
        f"{payload['monomorphic_sites']} monomorphic = {share:.1f}%, "
        f"{payload['torn_sites']} torn, "
        f"{payload['external_sites']} external)"
    )
    print(
        f"prune savings:     {pruned.bytes_saved} bytes across "
        f"{len(pruned.pruned)} methods"
    )
    if top_edges:
        print(f"top {len(top_edges)} weighted call edges:")
        for edge, weight in top_edges:
            print(
                f"  {weight:12.1f}  {edge.caller} -> {edge.callee}"
            )
    return 0


def _cmd_simulate(arguments) -> int:
    program = load_program(arguments.directory)
    trace = load_trace(arguments.trace)
    link = _LINKS[arguments.link]
    if arguments.loss:
        link = lossy_link(
            link,
            arguments.loss,
            retransmit_penalty_cycles=arguments.retransmit_penalty,
        )
        print(
            f"lossy link:        {link.name} "
            f"({link.cycles_per_byte:,.0f} cycles/byte effective)"
        )
    order = estimate_first_use(program)
    base = strict_baseline(program, trace, link, arguments.cpi)
    if arguments.links:
        from .sched import run_striped

        links = _parse_links(arguments.links)
        result = run_striped(
            program,
            trace,
            order,
            links,
            arguments.cpi,
            policy=arguments.sched_policy,
            max_streams=arguments.streams,
            data_partitioning=arguments.partition,
            engine=arguments.engine,
        )
        print(
            f"striped links:     "
            f"{', '.join(one.name for one in links)} "
            f"(policy {arguments.sched_policy})"
        )
    else:
        result = run_nonstrict(
            program,
            trace,
            order,
            link,
            arguments.cpi,
            method=arguments.method,
            max_streams=arguments.streams,
            data_partitioning=arguments.partition,
            engine=arguments.engine,
        )
    print(f"strict total:      {base.total_cycles:,.0f} cycles")
    print(f"non-strict total:  {result.total_cycles:,.0f} cycles")
    print(
        f"normalized:        "
        f"{result.normalized_to(base.total_cycles):.1f}%"
    )
    print(f"stalls:            {result.stall_count}")
    print(f"bytes terminated:  {result.bytes_terminated:,.0f}")
    return 0


def _cmd_trace(arguments) -> int:
    from .observe import (
        TraceRecorder,
        chrome_trace_json,
        render_timeline,
        to_jsonl,
    )

    program = load_program(arguments.directory)
    trace = load_trace(arguments.trace)

    if arguments.netserve:
        recorder = TraceRecorder(clock="seconds")
        result = _traced_netserve_run(
            program, trace, arguments, recorder
        )
        latencies = result.latencies
        print("mode:              netserve (wall clock, seconds)")
        print(
            f"wall time:         {result.wall_seconds * 1e3:.1f} ms"
        )
        print(f"stalls:            {result.stall_count}")
    else:
        recorder = TraceRecorder(clock="cycles")
        link = _LINKS[arguments.link]
        if arguments.policy == "strict":
            result = run_strict(
                program, trace, link, arguments.cpi, recorder=recorder
            )
        else:
            order = estimate_first_use(program)
            result = run_nonstrict(
                program,
                trace,
                order,
                link,
                arguments.cpi,
                method=arguments.method,
                data_partitioning=(
                    arguments.policy == "data_partitioned"
                ),
                recorder=recorder,
            )
        latencies = result.latencies
        print("mode:              simulated (cycle clock)")
        print(
            f"total:             {result.total_cycles:,.0f} cycles"
        )
        print(f"stalls:            {result.stall_count}")

    print(f"events:            {len(recorder.events)}")
    unit = latencies.unit
    for entry in latencies.entries:
        marker = " (demand)" if entry.demand_fetched else ""
        if unit == "seconds":
            shown = f"{entry.latency * 1e3:.1f} ms"
        else:
            shown = f"{entry.latency:,.0f} cycles"
        print(f"  first invoke {entry.method}: {shown}{marker}")

    if arguments.out:
        Path(arguments.out).write_text(
            chrome_trace_json(recorder, indent=2)
        )
        print(f"chrome trace:      {arguments.out}")
    if arguments.jsonl:
        Path(arguments.jsonl).write_text(
            to_jsonl(recorder.sorted_events())
        )
        print(f"jsonl events:      {arguments.jsonl}")
    if arguments.timeline:
        print(render_timeline(recorder, width=arguments.width))
    return 0


def _traced_netserve_run(program, trace, arguments, recorder):
    """One in-process server + traced fetch over a real socket."""
    import asyncio

    from .netserve import ClassFileServer, fetch_and_run

    async def scenario():
        server = ClassFileServer(
            program,
            bandwidth=arguments.bandwidth,
            once=True,
        )
        host, port = await server.start()
        try:
            result, _ = await fetch_and_run(
                host,
                port,
                trace,
                arguments.cpi,
                policy=arguments.policy,
                recorder=recorder,
            )
        finally:
            await server.aclose()
        return result

    return asyncio.run(scenario())


def _cmd_serve(arguments) -> int:
    import asyncio
    import json

    from .faults import FaultPlan
    from .netserve import ClassFileServer

    program = load_program(arguments.directory)
    fault_plan = None
    if arguments.faults:
        try:
            fault_plan = FaultPlan.from_dict(
                json.loads(arguments.faults)
            )
        except json.JSONDecodeError as error:
            print(f"error: --faults is not JSON: {error}", file=sys.stderr)
            return 2

    async def run_server() -> None:
        server = ClassFileServer(
            program,
            host=arguments.host,
            port=arguments.port,
            bandwidth=arguments.bandwidth,
            burst=arguments.burst,
            once=arguments.once,
            fault_plan=fault_plan,
        )
        host, port = await server.start()
        print(f"serving {arguments.directory} on {host}:{port}")
        if arguments.port_file:
            Path(arguments.port_file).write_text(str(port))
        try:
            await server.serve_until_done()
        except asyncio.CancelledError:
            pass
        finally:
            await server.aclose()
        for conn in server.stats.connections:
            print(
                f"{conn.peer}: policy={conn.policy} "
                f"units={conn.units_sent} bytes={conn.bytes_sent} "
                f"demand_fetches={conn.demand_fetches}"
            )

    try:
        asyncio.run(run_server())
    except KeyboardInterrupt:
        print("interrupted")
    return 0


def _parse_endpoints(raw: str) -> List[Tuple[str, int]]:
    """Parse ``host:port,host:port`` into endpoint tuples."""
    endpoints: List[Tuple[str, int]] = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        host, separator, port = token.rpartition(":")
        if not separator or not host:
            raise ReproError(
                f"--links expects host:port entries: {token!r}"
            )
        try:
            endpoints.append((host, int(port)))
        except ValueError:
            raise ReproError(
                f"--links has a non-integer port: {token!r}"
            ) from None
    if not endpoints:
        raise ReproError("--links is empty")
    return endpoints


def _cmd_fetch(arguments) -> int:
    import asyncio

    from .netserve import (
        NonStrictFetcher,
        ResilientFetcher,
        StripedResilientFetcher,
        format_fetch_stats,
        run_networked,
    )

    trace = (
        load_trace(arguments.trace) if arguments.trace else None
    )
    resilient = (
        arguments.max_reconnects is not None
        or arguments.deadline is not None
    )
    extra_links = (
        _parse_endpoints(arguments.links) if arguments.links else []
    )

    async def run_fetch() -> None:
        if extra_links:
            fetcher: NonStrictFetcher = StripedResilientFetcher(
                [(arguments.host, arguments.port), *extra_links],
                policy=arguments.policy,
                strategy=arguments.strategy,
                demand_timeout=arguments.timeout,
                connect_timeout=arguments.connect_timeout,
                max_reconnects=(
                    arguments.max_reconnects
                    if arguments.max_reconnects is not None
                    else 4
                ),
                deadline=arguments.deadline,
                hedge_delay=arguments.hedge_delay,
                stall_timeout=arguments.stall_timeout,
            )
        elif resilient:
            fetcher = ResilientFetcher(
                arguments.host,
                arguments.port,
                policy=arguments.policy,
                strategy=arguments.strategy,
                demand_timeout=arguments.timeout,
                connect_timeout=arguments.connect_timeout,
                max_reconnects=(
                    arguments.max_reconnects
                    if arguments.max_reconnects is not None
                    else 4
                ),
                deadline=arguments.deadline,
            )
        else:
            fetcher = NonStrictFetcher(
                arguments.host,
                arguments.port,
                policy=arguments.policy,
                strategy=arguments.strategy,
                demand_timeout=arguments.timeout,
                connect_timeout=arguments.connect_timeout,
            )
        await fetcher.connect()
        try:
            if trace is not None:
                result = await run_networked(
                    fetcher, trace, arguments.cpi
                )
                print(
                    f"wall time:         "
                    f"{result.wall_seconds * 1e3:.1f} ms"
                )
                print(
                    f"invocation latency: "
                    f"{result.invocation_latency * 1e3:.1f} ms"
                )
                for entry in result.latencies.entries:
                    marker = " (demand)" if entry.demand_fetched else ""
                    print(
                        f"  {entry.method}: "
                        f"{entry.latency * 1e3:.1f} ms{marker}"
                    )
            await fetcher.wait_until_complete()
        finally:
            await fetcher.aclose()
        print(format_fetch_stats(fetcher.stats))

    asyncio.run(run_fetch())
    return 0


def _parse_float_list(raw: str, option: str) -> List[Optional[float]]:
    """Parse a comma list of floats; ``none`` means unpaced."""
    values: List[Optional[float]] = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        if token.lower() in ("none", "unpaced"):
            values.append(None)
            continue
        try:
            values.append(float(token))
        except ValueError:
            raise ReproError(
                f"{option} expects comma-separated numbers "
                f"(or 'none'): {token!r}"
            ) from None
    if not values:
        raise ReproError(f"{option} is empty")
    return values


def _cmd_loadtest(arguments) -> int:
    import asyncio
    import dataclasses
    import json

    from .faults import FaultPlan
    from .netserve.loadgen import (
        format_report,
        run_sweep,
        sweep_cells,
        write_bench_json,
    )

    if (arguments.directory is None) == (arguments.workload is None):
        print(
            "error: give either a program directory or --workload NAME",
            file=sys.stderr,
        )
        return 2
    if arguments.workload is not None:
        from .workloads.spec import benchmark_spec
        from .workloads.synthetic import paper_workload

        program = paper_workload(
            benchmark_spec(arguments.workload)
        ).program
    else:
        program = load_program(arguments.directory)

    try:
        clients = [
            int(token)
            for token in arguments.clients.split(",")
            if token.strip()
        ]
    except ValueError:
        print(
            f"error: --clients expects comma-separated integers: "
            f"{arguments.clients!r}",
            file=sys.stderr,
        )
        return 2
    bandwidths = _parse_float_list(arguments.bandwidth, "--bandwidth")
    fault_plans: List[Optional[FaultPlan]] = [None]
    if arguments.faults:
        try:
            fault_plans.append(
                FaultPlan.from_dict(json.loads(arguments.faults))
            )
        except json.JSONDecodeError as error:
            print(
                f"error: --faults is not JSON: {error}", file=sys.stderr
            )
            return 2
    link_sets: List[Optional[Tuple[Optional[float], ...]]] = [None]
    if arguments.links:
        link_sets = [
            tuple(_parse_float_list(arguments.links, "--links"))
        ]
    elif arguments.striped or arguments.link_faults:
        print(
            "error: --striped/--link-faults need --links",
            file=sys.stderr,
        )
        return 2
    link_fault_plans: Optional[Tuple[Optional[FaultPlan], ...]] = None
    if arguments.link_faults:
        try:
            raw_plans = json.loads(arguments.link_faults)
        except json.JSONDecodeError as error:
            print(
                f"error: --link-faults is not JSON: {error}",
                file=sys.stderr,
            )
            return 2
        if not isinstance(raw_plans, list):
            print(
                "error: --link-faults expects a JSON list "
                "(null = clean link)",
                file=sys.stderr,
            )
            return 2
        link_fault_plans = tuple(
            None if plan is None else FaultPlan.from_dict(plan)
            for plan in raw_plans
        )

    cells = sweep_cells(
        clients,
        bandwidths,
        policy=arguments.policy,
        strategy=arguments.strategy,
        fault_plans=fault_plans,
        link_sets=link_sets,
        striped=arguments.striped,
    )
    if link_fault_plans is not None:
        cells = [
            dataclasses.replace(
                cell, link_fault_plans=link_fault_plans
            )
            if cell.links is not None
            else cell
            for cell in cells
        ]
    report = asyncio.run(
        run_sweep(
            program,
            cells,
            max_connections=arguments.max_connections,
            per_connection_bandwidth=(
                arguments.per_connection_bandwidth
            ),
            connect_timeout=arguments.connect_timeout,
        )
    )
    print(format_report(report))
    if arguments.out:
        target = write_bench_json(report, arguments.out)
        print(f"bench:  {target}")
    failed = sum(cell.failed for cell in report.cells)
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-inspect",
        description="Inspect and simulate stored repro programs.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    disasm = commands.add_parser("disasm", help="disassemble a method")
    disasm.add_argument("directory")
    disasm.add_argument("class_name")
    disasm.add_argument("method", nargs="?")
    disasm.set_defaults(handler=_cmd_disasm)

    layout = commands.add_parser("layout", help="byte layout per class")
    layout.add_argument("directory")
    layout.add_argument("--verbose", action="store_true")
    layout.set_defaults(handler=_cmd_layout)

    partition = commands.add_parser(
        "partition", help="global data split per class"
    )
    partition.add_argument("directory")
    partition.set_defaults(handler=_cmd_partition)

    order = commands.add_parser(
        "order", help="static first-use order"
    )
    order.add_argument("directory")
    order.set_defaults(handler=_cmd_order)

    verify = commands.add_parser("verify", help="verify every class")
    verify.add_argument("directory")
    verify.set_defaults(handler=_cmd_verify)

    lint = commands.add_parser(
        "lint",
        help="run static analysis rules; nonzero exit on errors",
    )
    lint.add_argument(
        "directory",
        nargs="?",
        default=None,
        help="stored program directory (or use --workload)",
    )
    lint.add_argument(
        "--workload",
        default=None,
        metavar="NAME",
        help="lint a bundled synthetic workload (BIT, Hanoi, JavaCup, "
        "Jess, JHLZip, TestDes) with its test trace",
    )
    lint.add_argument(
        "--trace",
        default=None,
        help="stored execution trace enabling the precise interval "
        "replay (guaranteed-misprediction proofs)",
    )
    lint.add_argument(
        "--link", choices=sorted(_LINKS), default="t1"
    )
    lint.add_argument(
        "--cpi",
        type=float,
        default=None,
        help="cycles per instruction (default: the workload's "
        "calibrated CPI, or 30)",
    )
    lint.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="write findings as SARIF 2.1.0 here",
    )
    lint.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write findings as plain JSON here",
    )
    lint.add_argument(
        "--fail-on",
        choices=("error", "warning", "note"),
        default="error",
        help="least severe finding level that exits nonzero "
        "(default: error; 'note' = SARIF's name for info)",
    )
    lint.set_defaults(handler=_cmd_lint)

    interproc = commands.add_parser(
        "interproc",
        help="interprocedural summary: reachability, devirtualization, "
        "weighted call edges, prune savings",
    )
    interproc.add_argument(
        "directory",
        nargs="?",
        default=None,
        help="stored program directory (or use --workload)",
    )
    interproc.add_argument(
        "--workload",
        default=None,
        metavar="NAME",
        help="analyze a bundled synthetic workload (BIT, Hanoi, "
        "JavaCup, Jess, JHLZip, TestDes)",
    )
    interproc.add_argument(
        "--top",
        type=int,
        default=10,
        help="how many weighted call edges to show",
    )
    interproc.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the summary as JSON here instead of text",
    )
    interproc.set_defaults(handler=_cmd_interproc)

    simulate = commands.add_parser(
        "simulate", help="co-simulate a stored trace"
    )
    simulate.add_argument("directory")
    simulate.add_argument("trace")
    simulate.add_argument(
        "--link", choices=sorted(_LINKS), default="t1"
    )
    simulate.add_argument("--cpi", type=float, default=100.0)
    simulate.add_argument(
        "--method",
        choices=("interleaved", "parallel"),
        default="interleaved",
    )
    simulate.add_argument("--streams", type=int, default=None)
    simulate.add_argument("--partition", action="store_true")
    simulate.add_argument(
        "--engine",
        choices=("reference", "batched"),
        default=None,
        help="simulation engine: the cycle-exact batched fast path or "
        "the reference per-segment loop (default: REPRO_SIM_ENGINE "
        "or reference)",
    )
    simulate.add_argument(
        "--links",
        default=None,
        help="stripe across multiple links: comma-separated t1/modem "
        "names or bits-per-second numbers (e.g. '57600,modem,modem'); "
        "overrides --link/--method for the non-strict run",
    )
    simulate.add_argument(
        "--sched-policy",
        choices=_SCHED_POLICIES,
        default="deadline",
        help="arbitration policy for --links striping",
    )
    simulate.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help="per-packet loss probability in [0, 1) applied to the "
        "link (expected-value retransmission model)",
    )
    simulate.add_argument(
        "--retransmit-penalty",
        type=float,
        default=0.0,
        help="extra cycles per lost packet (timeout + turnaround)",
    )
    simulate.set_defaults(handler=_cmd_simulate)

    traced = commands.add_parser(
        "trace",
        help="run one traced configuration and export its events",
    )
    traced.add_argument("directory")
    traced.add_argument("trace")
    traced.add_argument(
        "--policy",
        choices=("strict", "non_strict", "data_partitioned"),
        default="non_strict",
    )
    traced.add_argument(
        "--method",
        choices=("interleaved", "parallel"),
        default="interleaved",
        help="transfer methodology (simulated mode only)",
    )
    traced.add_argument(
        "--link", choices=sorted(_LINKS), default="t1"
    )
    traced.add_argument("--cpi", type=float, default=100.0)
    traced.add_argument(
        "--netserve",
        action="store_true",
        help="measure over a real localhost socket instead of the "
        "cycle-exact simulator",
    )
    traced.add_argument(
        "--bandwidth",
        type=float,
        default=None,
        help="netserve pacing cap in bytes/second (default: unpaced)",
    )
    traced.add_argument(
        "--out",
        default=None,
        help="write a Chrome-loadable trace (chrome://tracing) here",
    )
    traced.add_argument(
        "--jsonl",
        default=None,
        help="write the raw event stream as JSON-lines here",
    )
    traced.add_argument(
        "--timeline",
        action="store_true",
        help="print an ASCII per-method timeline",
    )
    traced.add_argument(
        "--width",
        type=int,
        default=60,
        help="timeline width in columns",
    )
    traced.set_defaults(handler=_cmd_trace)

    serve = commands.add_parser(
        "serve", help="serve transfer units over TCP"
    )
    serve.add_argument("directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument(
        "--bandwidth",
        type=float,
        default=None,
        help="pacing cap in bytes/second (default: unpaced)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=256.0,
        help="token-bucket burst size in bytes",
    )
    serve.add_argument(
        "--once",
        action="store_true",
        help="exit after the first connection finishes",
    )
    serve.add_argument(
        "--port-file",
        default=None,
        help="write the bound port to this file (for scripting)",
    )
    serve.add_argument(
        "--faults",
        default=None,
        metavar="JSON",
        help="fault-injection plan as a JSON object "
        '(e.g. \'{"seed": 7, "cut_after_bytes": [4000]}\'; '
        "see repro.faults.FaultPlan)",
    )
    serve.set_defaults(handler=_cmd_serve)

    fetch = commands.add_parser(
        "fetch", help="fetch a served program over TCP"
    )
    fetch.add_argument("host")
    fetch.add_argument("port", type=int)
    fetch.add_argument("trace", nargs="?", default=None)
    fetch.add_argument(
        "--policy",
        choices=("strict", "non_strict", "data_partitioned"),
        default="non_strict",
    )
    fetch.add_argument(
        "--strategy",
        choices=("static", "textual", "profile", "weighted"),
        default="static",
    )
    fetch.add_argument("--cpi", type=float, default=100.0)
    fetch.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="demand-fetch timeout in seconds",
    )
    fetch.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        help="seconds allowed for connect + session handshake",
    )
    fetch.add_argument(
        "--max-reconnects",
        type=int,
        default=None,
        help="enable the resilient fetcher with this reconnect budget "
        "(0 = degrade to a strict fetch on the first failure)",
    )
    fetch.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="overall fetch deadline in seconds (implies the "
        "resilient fetcher)",
    )
    fetch.add_argument(
        "--links",
        default=None,
        metavar="HOST:PORT,...",
        help="extra endpoints to stripe the fetch across (the "
        "positional host/port is link 0); selects the striped "
        "resilient fetcher",
    )
    fetch.add_argument(
        "--hedge-delay",
        type=float,
        default=0.25,
        help="seconds a striped demand fetch waits before hedging "
        "onto a second link",
    )
    fetch.add_argument(
        "--stall-timeout",
        type=float,
        default=5.0,
        help="seconds without a frame before a striped link is "
        "declared stalled and recycled",
    )
    fetch.set_defaults(handler=_cmd_fetch)

    loadtest = commands.add_parser(
        "loadtest",
        help="fleet-scale latency sweep against an in-process server",
    )
    loadtest.add_argument(
        "directory",
        nargs="?",
        default=None,
        help="stored program directory (or use --workload)",
    )
    loadtest.add_argument(
        "--workload",
        default=None,
        metavar="NAME",
        help="sweep a bundled synthetic workload (BIT, Hanoi, JavaCup, "
        "Jess, JHLZip, TestDes)",
    )
    loadtest.add_argument(
        "--clients",
        default="1,8,32",
        help="comma-separated concurrent client counts (one cell each)",
    )
    loadtest.add_argument(
        "--bandwidth",
        default="none",
        help="comma-separated shared-link rates in bytes/second "
        "('none' = unpaced)",
    )
    loadtest.add_argument(
        "--policy",
        choices=("strict", "non_strict", "data_partitioned"),
        default="non_strict",
    )
    loadtest.add_argument(
        "--strategy",
        choices=("static", "textual", "profile", "weighted"),
        default="static",
    )
    loadtest.add_argument(
        "--faults",
        default=None,
        metavar="JSON",
        help="fault-injection plan as JSON; adds a faulted cell per "
        "clients × bandwidth combination",
    )
    loadtest.add_argument(
        "--links",
        default=None,
        metavar="BW,BW,...",
        help="per-link bandwidths ('none' = unpaced); one server "
        "endpoint per link, workers striped round-robin",
    )
    loadtest.add_argument(
        "--striped",
        action="store_true",
        help="with --links, every worker is a striped resilient "
        "fetcher over all endpoints at once",
    )
    loadtest.add_argument(
        "--link-faults",
        default=None,
        metavar="JSON",
        help="JSON list of per-link fault plans (null = clean link); "
        "length must match --links",
    )
    loadtest.add_argument(
        "--max-connections",
        type=int,
        default=None,
        help="server admission limit (rejections counted per cell)",
    )
    loadtest.add_argument(
        "--per-connection-bandwidth",
        type=float,
        default=None,
        help="additional per-connection cap in bytes/second",
    )
    loadtest.add_argument(
        "--connect-timeout",
        type=float,
        default=30.0,
        help="per-client handshake timeout in seconds",
    )
    loadtest.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the sweep run table here (BENCH_serve.json)",
    )
    loadtest.set_defaults(handler=_cmd_loadtest)

    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
