"""Interprocedural call graph over a whole program.

Call edges keep their *intra-method order* (block id, then call-site
position), because the static first-use estimator processes call sites
in traversal order, not alphabetically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..errors import CFGError
from ..program import MethodId, Program
from .graph import ControlFlowGraph, build_cfg

__all__ = ["CallEdge", "CallGraph", "build_call_graph"]


@dataclass(frozen=True)
class CallEdge:
    """One call site.

    Attributes:
        caller: The calling method.
        callee: The called method (may be external to the program).
        block_id: Basic block holding the call.
        instruction_index: Index of the CALL in the caller's code.
        internal: True when the callee is defined in the program.
    """

    caller: MethodId
    callee: MethodId
    block_id: int
    instruction_index: int
    internal: bool


class CallGraph:
    """Call edges for every method of a program, plus per-method CFGs."""

    def __init__(
        self,
        program: Program,
        edges: List[CallEdge],
        cfgs: Dict[MethodId, ControlFlowGraph],
    ) -> None:
        self.program = program
        self.edges = edges
        self.cfgs = cfgs
        self._out: Dict[MethodId, List[CallEdge]] = {}
        self._in: Dict[MethodId, List[CallEdge]] = {}
        for edge in edges:
            self._out.setdefault(edge.caller, []).append(edge)
            if edge.internal:
                self._in.setdefault(edge.callee, []).append(edge)
        for calls in self._out.values():
            calls.sort(key=lambda e: e.instruction_index)

    @property
    def methods(self) -> List[MethodId]:
        return list(self.cfgs)

    def cfg(self, method_id: MethodId) -> ControlFlowGraph:
        try:
            return self.cfgs[method_id]
        except KeyError as exc:
            raise CFGError(f"no CFG for {method_id}") from exc

    def calls_from(self, method_id: MethodId) -> List[CallEdge]:
        """Outgoing call edges in instruction order."""
        return list(self._out.get(method_id, []))

    def calls_to(self, method_id: MethodId) -> List[CallEdge]:
        return list(self._in.get(method_id, []))

    def callees(self, method_id: MethodId) -> List[MethodId]:
        """Internal callees in call-site order, deduplicated."""
        seen: Set[MethodId] = set()
        result: List[MethodId] = []
        for edge in self.calls_from(method_id):
            if edge.internal and edge.callee not in seen:
                seen.add(edge.callee)
                result.append(edge.callee)
        return result

    def external_callees(self, method_id: MethodId) -> List[MethodId]:
        return [
            edge.callee
            for edge in self.calls_from(method_id)
            if not edge.internal
        ]

    def reachable_from(self, root: MethodId) -> List[MethodId]:
        """Methods reachable from ``root`` (root first, BFS order)."""
        if root not in self.cfgs:
            raise CFGError(f"unknown method {root}")
        seen = {root}
        order = [root]
        frontier = [root]
        while frontier:
            current = frontier.pop(0)
            for callee in self.callees(current):
                if callee not in seen:
                    seen.add(callee)
                    order.append(callee)
                    frontier.append(callee)
        return order

    def to_networkx(self):
        """Export as a ``networkx.MultiDiGraph`` (optional dependency)."""
        import networkx

        graph = networkx.MultiDiGraph()
        for method_id in self.cfgs:
            graph.add_node(method_id)
        for edge in self.edges:
            graph.add_edge(
                edge.caller,
                edge.callee,
                block_id=edge.block_id,
                internal=edge.internal,
            )
        return graph


def build_call_graph(program: Program) -> CallGraph:
    """Construct CFGs for all methods and the program call graph.

    Raises:
        CFGError: If any method body is structurally invalid or a CALL
            operand does not resolve to a MethodRef.
    """
    edges: List[CallEdge] = []
    cfgs: Dict[MethodId, ControlFlowGraph] = {}
    for classfile in program.classes:
        pool = classfile.constant_pool
        for method in classfile.methods:
            caller = MethodId(classfile.name, method.name)
            cfg = build_cfg(method.instructions)
            cfgs[caller] = cfg
            for block in cfg.blocks:
                for call_site in block.call_sites:
                    class_name, method_name, _ = pool.member_ref(
                        call_site.pool_index
                    )
                    callee = MethodId(class_name, method_name)
                    edges.append(
                        CallEdge(
                            caller=caller,
                            callee=callee,
                            block_id=block.block_id,
                            instruction_index=call_site.instruction_index,
                            internal=program.has_method(callee),
                        )
                    )
    return CallGraph(program, edges, cfgs)
