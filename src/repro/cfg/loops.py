"""Natural loop detection and the static loop-count heuristic inputs.

The paper's static first-use estimator (§4.1) prioritizes paths "with
the greatest number of static loops" and treats loop-exit edges
specially.  This module provides: back edges, natural loop bodies,
per-edge loop-exit classification, and the forward-reachable loop count
used as the path priority.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from .dominators import dominates, immediate_dominators
from .graph import ControlFlowGraph, Edge

__all__ = ["NaturalLoop", "LoopAnalysis", "analyze_loops"]


@dataclass(frozen=True)
class NaturalLoop:
    """One natural loop.

    Attributes:
        header: Block id of the loop header.
        body: All block ids in the loop (header included).
        back_edges: The ``(tail, header)`` back edges forming it.
    """

    header: int
    body: FrozenSet[int]
    back_edges: Tuple[Tuple[int, int], ...]

    def __contains__(self, block_id: int) -> bool:
        return block_id in self.body


@dataclass
class LoopAnalysis:
    """Loop structure of one CFG.

    Attributes:
        loops: Natural loops, merged per header.
        back_edges: All back edges ``(tail, header)``.
        loop_headers: Set of header block ids.
        loop_depth: Nesting depth per block (0 = not in any loop).
        forward_loop_count: For each block, how many distinct loop
            headers are reachable from it along *forward* (non-back)
            edges — the paper's "number of static loops" path priority.
        forward_instruction_count: Static instructions reachable along
            forward edges (tie-breaker).
    """

    loops: List[NaturalLoop]
    back_edges: Set[Tuple[int, int]]
    loop_headers: Set[int]
    loop_depth: Dict[int, int]
    forward_loop_count: Dict[int, int]
    forward_instruction_count: Dict[int, int]

    def loop_with_header(self, header: int) -> NaturalLoop:
        for loop in self.loops:
            if loop.header == header:
                return loop
        raise KeyError(f"no loop with header {header}")

    def is_back_edge(self, source: int, target: int) -> bool:
        return (source, target) in self.back_edges

    def is_loop_exit_edge(self, edge: Edge) -> bool:
        """True when the edge leaves a loop containing its source."""
        for loop in self.loops:
            if edge.source in loop and edge.target not in loop:
                return True
        return False


def _natural_loop_body(
    cfg: ControlFlowGraph, tail: int, header: int
) -> Set[int]:
    body = {header, tail}
    worklist = [tail]
    while worklist:
        current = worklist.pop()
        if current == header:
            continue
        for predecessor in cfg.predecessors(current):
            if predecessor not in body:
                body.add(predecessor)
                worklist.append(predecessor)
    return body


def analyze_loops(cfg: ControlFlowGraph) -> LoopAnalysis:
    """Compute the full :class:`LoopAnalysis` for a CFG."""
    idom = immediate_dominators(cfg)
    reachable = set(idom)

    back_edges: Set[Tuple[int, int]] = set()
    for edge in cfg.edges:
        if edge.source in reachable and dominates(
            idom, edge.target, edge.source
        ):
            back_edges.add((edge.source, edge.target))

    bodies: Dict[int, Set[int]] = {}
    edges_per_header: Dict[int, List[Tuple[int, int]]] = {}
    for tail, header in sorted(back_edges):
        body = _natural_loop_body(cfg, tail, header)
        bodies.setdefault(header, set()).update(body)
        edges_per_header.setdefault(header, []).append((tail, header))
    loops = [
        NaturalLoop(
            header=header,
            body=frozenset(bodies[header]),
            back_edges=tuple(edges_per_header[header]),
        )
        for header in sorted(bodies)
    ]

    loop_depth = {block.block_id: 0 for block in cfg.blocks}
    for loop in loops:
        for block_id in loop.body:
            loop_depth[block_id] += 1

    forward_loop_count = _forward_reachability(
        cfg,
        back_edges,
        seed={header: {header} for header in bodies},
        combine=set.union,
        empty=set,
    )
    loop_counts = {
        block_id: len(headers)
        for block_id, headers in forward_loop_count.items()
    }

    instruction_seed = {
        block.block_id: len(block) for block in cfg.blocks
    }
    forward_instructions = _forward_sum(
        cfg, back_edges, instruction_seed
    )

    return LoopAnalysis(
        loops=loops,
        back_edges=back_edges,
        loop_headers=set(bodies),
        loop_depth=loop_depth,
        forward_loop_count=loop_counts,
        forward_instruction_count=forward_instructions,
    )


def _forward_edges(
    cfg: ControlFlowGraph, back_edges: Set[Tuple[int, int]]
) -> Dict[int, List[int]]:
    successors: Dict[int, List[int]] = {
        block.block_id: [] for block in cfg.blocks
    }
    for edge in cfg.edges:
        if (edge.source, edge.target) not in back_edges:
            successors[edge.source].append(edge.target)
    return successors


def _strongly_connected_components(
    successors: Dict[int, List[int]]
) -> List[List[int]]:
    """Tarjan's SCC algorithm, iterative.

    Components are emitted in *reverse topological* order of the
    condensation (every component appears before any component that can
    reach it), which is exactly the sweep order the forward analyses
    need.  Dominance-based back-edge removal only breaks reducible
    cycles, so irreducible regions (and unreachable cycles) survive in
    the "forward" graph — condensing them first makes the sweeps exact
    instead of silently undercounting whenever a plain DFS postorder
    happened to visit a cycle in the wrong order.
    """
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in successors:
        if root in index:
            continue
        work: List[Tuple[int, object]] = [(root, iter(successors[root]))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, iterator = work[-1]
            advanced = False
            for successor in iterator:  # type: ignore[attr-defined]
                if successor not in index:
                    index[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (successor, iter(successors[successor]))
                    )
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _forward_reachability(cfg, back_edges, seed, combine, empty):
    """Per-block set union over the forward graph.

    Sweeps the SCC condensation in reverse topological order, so the
    result is exact even when the forward graph retains cycles
    (irreducible regions, unreachable cycles): every member of a
    component reaches every other, so all members share the union of
    the component's seeds plus everything its exits reach.
    """
    successors = _forward_edges(cfg, back_edges)
    components = _strongly_connected_components(successors)
    result: Dict[int, Set[int]] = {}
    for component in components:
        members = set(component)
        value = empty()
        for block_id in component:
            value = combine(value, set(seed.get(block_id, empty())))
            for successor in successors[block_id]:
                if successor not in members:
                    value = combine(value, result[successor])
        for block_id in component:
            result[block_id] = value
    return result


def _forward_sum(
    cfg: ControlFlowGraph,
    back_edges: Set[Tuple[int, int]],
    seed: Dict[int, int],
) -> Dict[int, int]:
    """Max-over-paths sum of ``seed`` along the forward graph.

    Used as the estimator's tie-breaker: "static instructions for each
    path of the graph" — we take the heaviest path from each block.
    Non-trivial SCCs (irreducible residue the dominance-based back-edge
    filter could not break) are condensed: each member counts the whole
    component once plus the heaviest exit path, matching how the
    reducible case charges a loop body once per static walk.
    """
    successors = _forward_edges(cfg, back_edges)
    components = _strongly_connected_components(successors)
    result: Dict[int, int] = {}
    for component in components:
        members = set(component)
        internal = sum(seed.get(block_id, 0) for block_id in component)
        best_exit = 0
        for block_id in component:
            for successor in successors[block_id]:
                if successor not in members:
                    best_exit = max(best_exit, result[successor])
        for block_id in component:
            result[block_id] = internal + best_exit
    return result
