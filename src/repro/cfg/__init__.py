"""Control-flow analysis: basic blocks, CFGs, dominators, loops, calls."""

from .basic_blocks import BasicBlock, CallSite, partition_blocks
from .callgraph import CallEdge, CallGraph, build_call_graph
from .dominators import dominates, immediate_dominators
from .graph import ControlFlowGraph, Edge, EdgeKind, build_cfg
from .loops import LoopAnalysis, NaturalLoop, analyze_loops

__all__ = [
    "BasicBlock",
    "CallSite",
    "partition_blocks",
    "CallEdge",
    "CallGraph",
    "build_call_graph",
    "dominates",
    "immediate_dominators",
    "ControlFlowGraph",
    "Edge",
    "EdgeKind",
    "build_cfg",
    "LoopAnalysis",
    "NaturalLoop",
    "analyze_loops",
]
