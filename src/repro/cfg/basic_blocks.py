"""Basic block partitioning of a method's bytecode.

Leaders are the first instruction, every branch target, and every
instruction following a branch or a return.  ``CALL`` does *not* end a
block — call sites are recorded inside the block, matching the paper's
traversal, which scans the blocks of a procedure for calls in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bytecode import Instruction, Opcode, offsets_of
from ..errors import CFGError

__all__ = ["CallSite", "BasicBlock", "partition_blocks"]


@dataclass(frozen=True)
class CallSite:
    """A ``CALL`` instruction inside a basic block.

    Attributes:
        instruction_index: Index into the method's instruction list.
        pool_index: Constant pool index of the MethodRef operand.
    """

    instruction_index: int
    pool_index: int


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run.

    Attributes:
        block_id: Dense index, 0 for the entry block.
        start_offset: Byte offset of the first instruction.
        instructions: The block's instructions.
        instruction_indexes: Their indexes in the method's code.
        call_sites: CALL sites in block order.
    """

    block_id: int
    start_offset: int
    instructions: List[Instruction] = field(default_factory=list)
    instruction_indexes: List[int] = field(default_factory=list)
    call_sites: List[CallSite] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return sum(instruction.size for instruction in self.instructions)

    @property
    def last(self) -> Instruction:
        if not self.instructions:
            raise CFGError(f"empty basic block {self.block_id}")
        return self.instructions[-1]

    @property
    def end_offset(self) -> int:
        """Offset one past the final instruction."""
        return self.start_offset + self.size_bytes

    @property
    def terminates(self) -> bool:
        """True when the block ends in a return."""
        return self.last.info.is_return

    def __len__(self) -> int:
        return len(self.instructions)


def partition_blocks(
    instructions: List[Instruction],
) -> Tuple[List[BasicBlock], Dict[int, int]]:
    """Split code into basic blocks.

    Returns:
        ``(blocks, offset_to_block)`` where ``offset_to_block`` maps a
        leader byte offset to its block id.

    Raises:
        CFGError: On empty code or a branch to a non-instruction offset.
    """
    if not instructions:
        raise CFGError("cannot partition empty code")
    offsets = offsets_of(instructions)
    offset_set = set(offsets)
    end = offsets[-1] + instructions[-1].size

    leaders = {0}
    for instruction, offset in zip(instructions, offsets):
        if instruction.info.is_branch:
            target = instruction.branch_target(offset)
            if target not in offset_set:
                raise CFGError(
                    f"branch at offset {offset} targets {target}, which "
                    "is not an instruction boundary"
                )
            leaders.add(target)
            next_offset = offset + instruction.size
            if next_offset < end:
                leaders.add(next_offset)
        elif instruction.info.is_return:
            next_offset = offset + instruction.size
            if next_offset < end:
                leaders.add(next_offset)

    blocks: List[BasicBlock] = []
    offset_to_block: Dict[int, int] = {}
    current: Optional[BasicBlock] = None
    for index, (instruction, offset) in enumerate(
        zip(instructions, offsets)
    ):
        if offset in leaders:
            current = BasicBlock(
                block_id=len(blocks), start_offset=offset
            )
            blocks.append(current)
            offset_to_block[offset] = current.block_id
        assert current is not None
        current.instructions.append(instruction)
        current.instruction_indexes.append(index)
        if instruction.opcode == Opcode.CALL:
            current.call_sites.append(
                CallSite(
                    instruction_index=index,
                    pool_index=instruction.operand,
                )
            )
    return blocks, offset_to_block
