"""Per-method control-flow graphs.

Edges carry a kind so the static first-use estimator can distinguish
fall-through from taken branches and identify loop-exit edges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from ..bytecode import Instruction
from ..errors import CFGError
from .basic_blocks import BasicBlock, partition_blocks

__all__ = ["EdgeKind", "Edge", "ControlFlowGraph", "build_cfg"]


class EdgeKind(enum.Enum):
    """How control reaches a successor block."""

    FALLTHROUGH = "fallthrough"
    TAKEN = "taken"


@dataclass(frozen=True)
class Edge:
    """A directed CFG edge between basic blocks."""

    source: int
    target: int
    kind: EdgeKind


class ControlFlowGraph:
    """Basic blocks plus directed edges for one method body."""

    def __init__(
        self, blocks: List[BasicBlock], edges: List[Edge]
    ) -> None:
        self.blocks = blocks
        self.edges = edges
        self._successors: Dict[int, List[Edge]] = {
            block.block_id: [] for block in blocks
        }
        self._predecessors: Dict[int, List[Edge]] = {
            block.block_id: [] for block in blocks
        }
        for edge in edges:
            self._successors[edge.source].append(edge)
            self._predecessors[edge.target].append(edge)

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def __len__(self) -> int:
        return len(self.blocks)

    def block(self, block_id: int) -> BasicBlock:
        if not 0 <= block_id < len(self.blocks):
            raise CFGError(f"no basic block {block_id}")
        return self.blocks[block_id]

    def successors(self, block_id: int) -> List[int]:
        return [edge.target for edge in self._successors[block_id]]

    def successor_edges(self, block_id: int) -> List[Edge]:
        return list(self._successors[block_id])

    def predecessors(self, block_id: int) -> List[int]:
        return [edge.source for edge in self._predecessors[block_id]]

    def reverse_postorder(self) -> List[int]:
        """Block ids in reverse postorder from the entry."""
        visited = set()
        order: List[int] = []

        def visit(block_id: int) -> None:
            stack = [(block_id, iter(self.successors(block_id)))]
            visited.add(block_id)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for successor in successors:
                    if successor not in visited:
                        visited.add(successor)
                        stack.append(
                            (successor, iter(self.successors(successor)))
                        )
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry.block_id)
        return list(reversed(order))

    def reachable_blocks(self) -> List[int]:
        return self.reverse_postorder()

    @property
    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks)


def build_cfg(instructions: List[Instruction]) -> ControlFlowGraph:
    """Build the CFG of a method body.

    Raises:
        CFGError: On empty or structurally invalid code.
    """
    blocks, offset_to_block = partition_blocks(instructions)
    block_count = len(blocks)
    edges: List[Edge] = []
    for block in blocks:
        last = block.last
        last_offset = block.end_offset - last.size
        if last.info.is_return:
            continue
        if last.info.is_branch:
            target_offset = last.branch_target(last_offset)
            target = offset_to_block.get(target_offset)
            if target is None:
                raise CFGError(
                    f"branch target offset {target_offset} is not a "
                    "block leader"
                )
            edges.append(Edge(block.block_id, target, EdgeKind.TAKEN))
            if last.info.is_conditional:
                if block.block_id + 1 >= block_count:
                    raise CFGError(
                        "conditional branch falls off the end of the code"
                    )
                edges.append(
                    Edge(
                        block.block_id,
                        block.block_id + 1,
                        EdgeKind.FALLTHROUGH,
                    )
                )
        else:
            if block.block_id + 1 >= block_count:
                raise CFGError("control falls off the end of the code")
            edges.append(
                Edge(
                    block.block_id,
                    block.block_id + 1,
                    EdgeKind.FALLTHROUGH,
                )
            )
    return ControlFlowGraph(blocks, edges)
