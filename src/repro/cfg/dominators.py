"""Dominator computation (Cooper–Harvey–Kennedy iterative algorithm)."""

from __future__ import annotations

from typing import Dict, Optional

from .graph import ControlFlowGraph

__all__ = ["immediate_dominators", "dominates"]


def immediate_dominators(cfg: ControlFlowGraph) -> Dict[int, Optional[int]]:
    """Immediate dominator of every reachable block.

    Returns:
        Mapping block id → idom block id; the entry maps to ``None``.
        Unreachable blocks are absent.
    """
    order = cfg.reverse_postorder()
    position = {block_id: index for index, block_id in enumerate(order)}
    entry = cfg.entry.block_id
    idom: Dict[int, int] = {entry: entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]
            while position[b] > position[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for block_id in order:
            if block_id == entry:
                continue
            candidates = [
                predecessor
                for predecessor in cfg.predecessors(block_id)
                if predecessor in idom
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for predecessor in candidates[1:]:
                new_idom = intersect(new_idom, predecessor)
            if idom.get(block_id) != new_idom:
                idom[block_id] = new_idom
                changed = True

    result: Dict[int, Optional[int]] = dict(idom)
    result[entry] = None
    return result


def dominates(
    idom: Dict[int, Optional[int]], dominator: int, block_id: int
) -> bool:
    """Whether ``dominator`` dominates ``block_id`` (reflexive)."""
    current: Optional[int] = block_id
    while current is not None:
        if current == dominator:
            return True
        current = idom.get(current)
    return False
