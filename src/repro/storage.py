"""Persistence: programs, traces, and profiles on disk.

A :class:`~repro.program.Program` is stored as a directory of
``<ClassName>.rclass`` wire images plus a ``program.json`` manifest
(class transfer order and entry point) — mirroring how a Java
application is a directory/jar of ``.class`` files.  Traces and
first-use profiles serialize to JSON, so an experiment can be profiled
once and replayed many times (or shipped to another machine).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from .classfile import deserialize, serialize
from .errors import ClassFileError, ReproError
from .program import MethodId, Program
from .vm import (
    ExecutionTrace,
    FirstUseEvent,
    FirstUseProfile,
    MethodProfile,
    TraceSegment,
)

__all__ = [
    "save_program",
    "load_program",
    "save_trace",
    "load_trace",
    "save_profile",
    "load_profile",
]

_MANIFEST = "program.json"


def _class_filename(name: str) -> str:
    # Class names may contain '/' (package separators); flatten them.
    return name.replace("/", "__") + ".rclass"


def save_program(program: Program, directory: Union[str, Path]) -> Path:
    """Write a program to ``directory`` (created if needed).

    Returns:
        The directory path.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    manifest = {
        "classes": [],
        "entry_point": None,
    }
    for classfile in program.classes:
        filename = _class_filename(classfile.name)
        (path / filename).write_bytes(serialize(classfile))
        manifest["classes"].append(
            {"name": classfile.name, "file": filename}
        )
    if program.entry_point is not None:
        manifest["entry_point"] = {
            "class": program.entry_point.class_name,
            "method": program.entry_point.method_name,
        }
    (path / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return path


def load_program(directory: Union[str, Path]) -> Program:
    """Load a program previously written by :func:`save_program`.

    Raises:
        ClassFileError: On a missing manifest, missing class file, or a
            corrupt wire image.
    """
    path = Path(directory)
    manifest_path = path / _MANIFEST
    if not manifest_path.is_file():
        raise ClassFileError(f"no {_MANIFEST} in {path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ClassFileError(f"corrupt manifest in {path}") from exc
    classes = []
    for record in manifest.get("classes", []):
        class_path = path / record["file"]
        if not class_path.is_file():
            raise ClassFileError(f"missing class file {class_path}")
        classfile = deserialize(class_path.read_bytes())
        if classfile.name != record["name"]:
            raise ClassFileError(
                f"{class_path}: holds class {classfile.name!r}, "
                f"manifest says {record['name']!r}"
            )
        classes.append(classfile)
    entry = manifest.get("entry_point")
    entry_point = (
        MethodId(entry["class"], entry["method"]) if entry else None
    )
    return Program(classes=classes, entry_point=entry_point)


# --- traces -----------------------------------------------------------


def save_trace(trace: ExecutionTrace, path: Union[str, Path]) -> Path:
    """Write a trace as JSON."""
    payload = {
        "segments": [
            [
                segment.method.class_name,
                segment.method.method_name,
                segment.instructions,
            ]
            for segment in trace.segments
        ]
    }
    target = Path(path)
    target.write_text(json.dumps(payload))
    return target


def load_trace(path: Union[str, Path]) -> ExecutionTrace:
    """Load a trace written by :func:`save_trace`.

    Raises:
        ReproError: On malformed content.
    """
    try:
        payload = json.loads(Path(path).read_text())
        segments = [
            TraceSegment(MethodId(cls, method), int(count))
            for cls, method, count in payload["segments"]
        ]
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"corrupt trace file {path}") from exc
    return ExecutionTrace(segments=segments)


# --- profiles ----------------------------------------------------------


def save_profile(
    profile: FirstUseProfile, path: Union[str, Path]
) -> Path:
    """Write a first-use profile as JSON."""
    payload = {
        "total_instructions": profile.total_instructions,
        "events": [
            {
                "class": event.method.class_name,
                "method": event.method.method_name,
                "index": event.index,
                "instructions_before": event.dynamic_instructions_before,
                "unique_bytes_before": event.unique_bytes_before,
            }
            for event in profile.events
        ],
        "stats": [
            {
                "class": method_id.class_name,
                "method": method_id.method_name,
                "invocations": stats.invocations,
                "dynamic_instructions": stats.dynamic_instructions,
                "unique_bytes": stats.unique_bytes,
            }
            for method_id, stats in profile.method_stats.items()
        ],
    }
    target = Path(path)
    target.write_text(json.dumps(payload))
    return target


def load_profile(path: Union[str, Path]) -> FirstUseProfile:
    """Load a profile written by :func:`save_profile`.

    Raises:
        ReproError: On malformed content.
    """
    try:
        payload = json.loads(Path(path).read_text())
        events = [
            FirstUseEvent(
                method=MethodId(record["class"], record["method"]),
                index=int(record["index"]),
                dynamic_instructions_before=int(
                    record["instructions_before"]
                ),
                unique_bytes_before=int(record["unique_bytes_before"]),
            )
            for record in payload["events"]
        ]
        stats: Dict[MethodId, MethodProfile] = {}
        for record in payload["stats"]:
            stats[MethodId(record["class"], record["method"])] = (
                MethodProfile(
                    invocations=int(record["invocations"]),
                    dynamic_instructions=int(
                        record["dynamic_instructions"]
                    ),
                    unique_bytes=int(record["unique_bytes"]),
                )
            )
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"corrupt profile file {path}") from exc
    return FirstUseProfile(
        events=events,
        method_stats=stats,
        total_instructions=int(payload.get("total_instructions", 0)),
    )
