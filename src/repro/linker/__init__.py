"""Incremental linking: verification, preparation, lazy resolution."""

from .linker import IncrementalLinker, LinkCostModel, LinkReport
from .resolution import ResolutionTable, ResolvedRef
from .verifier import (
    verify_class,
    verify_global_data,
    verify_method,
    verify_structure,
)

__all__ = [
    "IncrementalLinker",
    "LinkCostModel",
    "LinkReport",
    "ResolutionTable",
    "ResolvedRef",
    "verify_class",
    "verify_global_data",
    "verify_method",
    "verify_structure",
]
