"""The incremental linker: verification + preparation + resolution.

Drives §3.1's pipeline in non-strict order, with an explicit cost model
(an extension — the paper describes the mechanism but excludes its
overhead from the results; we expose it so the overhead can be
studied):

* when a class's **global data** arrives: step 1–2 verification and
  preparation (static storage allocation);
* when a **method** arrives: step 3 verification of that method alone;
* when a method is **invoked** the first time: lazy resolution of the
  symbolic references its code makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from ..classfile import class_layout
from ..errors import LinkError
from ..program import MethodId, Program
from .resolution import ResolutionTable
from .verifier import verify_global_data, verify_method, verify_structure

__all__ = ["LinkCostModel", "LinkReport", "IncrementalLinker"]


@dataclass(frozen=True)
class LinkCostModel:
    """Cycles charged per linking activity.

    Defaults are deliberately modest; the paper notes its results "do
    not account for the overhead from a more complicated verification
    process", so the zero model reproduces the paper and a non-zero
    model quantifies the overhead.
    """

    cycles_per_global_byte: float = 0.0
    cycles_per_code_byte: float = 0.0
    cycles_per_resolution: float = 0.0

    @classmethod
    def zero(cls) -> "LinkCostModel":
        return cls()

    @classmethod
    def default_overhead(cls) -> "LinkCostModel":
        """A plausible software-verifier cost: a few cycles per byte."""
        return cls(
            cycles_per_global_byte=4.0,
            cycles_per_code_byte=8.0,
            cycles_per_resolution=60.0,
        )


@dataclass
class LinkReport:
    """Accumulated linking work and its modelled cost."""

    classes_prepared: int = 0
    methods_verified: int = 0
    methods_resolved: int = 0
    verification_cycles: float = 0.0
    resolution_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        return self.verification_cycles + self.resolution_cycles


class IncrementalLinker:
    """Links a program incrementally as its pieces arrive.

    Typical non-strict order::

        linker.on_global_data("A")     # global data transferred
        linker.on_method_arrival(MethodId("A", "main"))
        linker.on_first_invocation(MethodId("A", "main"))

    Raises:
        LinkError: When events arrive out of order (a method of a class
            whose global data has not been prepared) or when resolution
            fails.
        VerificationError: When any verification step fails.
    """

    def __init__(
        self,
        program: Program,
        cost_model: Optional[LinkCostModel] = None,
    ) -> None:
        self.program = program
        self.cost_model = cost_model or LinkCostModel.zero()
        self.resolution = ResolutionTable(program)
        self.report = LinkReport()
        self._prepared_classes: Set[str] = set()
        self._verified_methods: Set[MethodId] = set()

    # -- events ---------------------------------------------------------

    def on_global_data(self, class_name: str) -> None:
        """Global data arrived: steps 1–2 plus preparation."""
        if class_name in self._prepared_classes:
            return
        classfile = self.program.class_named(class_name)
        verify_structure(classfile)
        verify_global_data(classfile)
        self._prepared_classes.add(class_name)
        self.report.classes_prepared += 1
        global_bytes = class_layout(classfile).global_size
        self.report.verification_cycles += (
            self.cost_model.cycles_per_global_byte * global_bytes
        )

    def on_method_arrival(self, method_id: MethodId) -> None:
        """A method's code arrived: step-3 verification for it alone."""
        if method_id in self._verified_methods:
            return
        if method_id.class_name not in self._prepared_classes:
            raise LinkError(
                f"method {method_id} arrived before its class's "
                "global data was prepared"
            )
        classfile = self.program.class_named(method_id.class_name)
        method = classfile.method(method_id.method_name)
        verify_method(classfile, method)
        self._verified_methods.add(method_id)
        self.report.methods_verified += 1
        self.report.verification_cycles += (
            self.cost_model.cycles_per_code_byte * method.code_bytes
        )

    def on_first_invocation(self, method_id: MethodId) -> None:
        """A method is about to run: lazy resolution of its references."""
        if method_id not in self._verified_methods:
            raise LinkError(
                f"method {method_id} invoked before it was verified"
            )
        if self.resolution.is_resolved(method_id):
            return
        refs = self.resolution.resolve_method(method_id)
        self.report.methods_resolved += 1
        self.report.resolution_cycles += (
            self.cost_model.cycles_per_resolution * len(refs)
        )

    # -- conveniences ------------------------------------------------------

    def link_all_strict(self) -> LinkReport:
        """Strict-style linking: everything up front, in file order."""
        for classfile in self.program.classes:
            self.on_global_data(classfile.name)
            for method in classfile.methods:
                self.on_method_arrival(
                    MethodId(classfile.name, method.name)
                )
        for method_id in self.program.method_ids():
            self.on_first_invocation(method_id)
        return self.report

    @property
    def prepared_classes(self) -> Set[str]:
        return set(self._prepared_classes)

    @property
    def verified_methods(self) -> Set[MethodId]:
        return set(self._verified_methods)
