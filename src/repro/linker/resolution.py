"""Symbolic reference resolution, lazy at procedure granularity (§3.1).

"While verification and preparation can be performed once the global
data is transferred, resolution can be performed lazily as procedures
are invoked."  :class:`ResolutionTable` resolves the references a
single method touches, on demand, recording which targets are internal
(another method/field of the program) and which are external (runtime
library) — the non-strict analogue of replacing symbolic references
with direct references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..bytecode import Opcode
from ..classfile import FieldRefEntry, MethodRefEntry
from ..errors import LinkError
from ..program import MethodId, Program

__all__ = ["ResolvedRef", "ResolutionTable"]


@dataclass(frozen=True)
class ResolvedRef:
    """One resolved symbolic reference.

    Attributes:
        kind: ``"method"`` or ``"field"``.
        target_class: Referenced class name.
        target_name: Referenced member name.
        descriptor: Member descriptor.
        internal: True when the target is defined in the program.
    """

    kind: str
    target_class: str
    target_name: str
    descriptor: str
    internal: bool


class ResolutionTable:
    """Lazily resolves the references each method uses.

    Args:
        program: The program whose classes resolve against each other.
        strict_missing: When True, a reference to a *program* class
            whose member does not exist raises
            :class:`~repro.errors.LinkError` (a reference to an
            entirely unknown class is always treated as external).
    """

    def __init__(
        self, program: Program, strict_missing: bool = True
    ) -> None:
        self.program = program
        self.strict_missing = strict_missing
        self._resolved: Dict[MethodId, List[ResolvedRef]] = {}

    @property
    def resolved_methods(self) -> Set[MethodId]:
        return set(self._resolved)

    def is_resolved(self, method_id: MethodId) -> bool:
        return method_id in self._resolved

    def resolve_method(self, method_id: MethodId) -> List[ResolvedRef]:
        """Resolve (once) every reference ``method_id``'s code makes."""
        if method_id in self._resolved:
            return self._resolved[method_id]
        classfile = self.program.class_named(method_id.class_name)
        pool = classfile.constant_pool
        method = classfile.method(method_id.method_name)
        refs: List[ResolvedRef] = []
        for instruction in method.instructions:
            if instruction.opcode == Opcode.CALL:
                entry = pool.get(instruction.operand)
                if not isinstance(entry, MethodRefEntry):
                    raise LinkError(
                        f"{method_id}: CALL operand is not a MethodRef"
                    )
                refs.append(
                    self._resolve_member(
                        method_id, pool, instruction.operand, "method"
                    )
                )
            elif instruction.opcode in (
                Opcode.GETSTATIC,
                Opcode.PUTSTATIC,
            ):
                entry = pool.get(instruction.operand)
                if not isinstance(entry, FieldRefEntry):
                    raise LinkError(
                        f"{method_id}: field access operand is not a "
                        "FieldRef"
                    )
                refs.append(
                    self._resolve_member(
                        method_id, pool, instruction.operand, "field"
                    )
                )
        self._resolved[method_id] = refs
        return refs

    def _resolve_member(
        self, method_id: MethodId, pool, index: int, kind: str
    ) -> ResolvedRef:
        target_class, target_name, descriptor = pool.member_ref(index)
        internal = False
        if self.program.has_class(target_class):
            classfile = self.program.class_named(target_class)
            if kind == "method":
                internal = classfile.has_method(target_name)
            else:
                internal = any(
                    f.name == target_name for f in classfile.fields
                )
            if not internal and self.strict_missing:
                raise LinkError(
                    f"{method_id}: unresolved {kind} reference "
                    f"{target_class}.{target_name}"
                )
        return ResolvedRef(
            kind=kind,
            target_class=target_class,
            target_name=target_name,
            descriptor=descriptor,
            internal=internal,
        )

    def resolve_all(self) -> Dict[MethodId, List[ResolvedRef]]:
        """Eager resolution of every method (strict-style linking)."""
        for method_id in self.program.method_ids():
            self.resolve_method(method_id)
        return dict(self._resolved)

    def external_references(self) -> Set[Tuple[str, str]]:
        """(class, member) pairs resolved as external so far."""
        return {
            (ref.target_class, ref.target_name)
            for refs in self._resolved.values()
            for ref in refs
            if not ref.internal
        }
