"""Class file verification, incremental at procedure granularity (§3.1).

The JVM's five verification steps map onto our model as:

1. **File structure** — magic, version, well-formed tables (the
   deserializer enforces this; :func:`verify_structure` re-checks an
   in-memory class).
2. **Global data** — every constant pool reference index is in range
   and of the right type; field descriptors parse.
3. **Per-procedure static checks** — performed *as each procedure
   transfers*: bytecode decodes, branch targets hit instruction
   boundaries, CALL/LDC/GETSTATIC operands resolve to the right pool
   entry types, and the operand stack is statically consistent (no
   underflow, consistent depth at joins, within ``max_stack``).
   Step 3 delegates to the typed abstract-interpretation engine in
   :mod:`repro.analyze.dataflow`, so it also rejects *definite type
   errors* (e.g. arithmetic on a string, ``ARRAYLEN`` of an int) that
   the old depth-only walk accepted — a strict superset of checks.
4. **Runtime checks** — performed as procedures execute (the VM's
   bounds/type checks).

Non-strict execution needs steps 1–2 to run once the global data has
arrived and step 3 to run per method on arrival; the
:class:`IncrementalVerifier` in :mod:`repro.linker.linker` drives that
ordering.
"""

from __future__ import annotations

from ..classfile import (
    ClassFile,
    ClassEntry,
    FieldRefEntry,
    StringEntry,
    MethodInfo,
    MethodRefEntry,
    NameAndTypeEntry,
    Utf8Entry,
)
from ..errors import VerificationError

__all__ = [
    "verify_structure",
    "verify_global_data",
    "verify_method",
    "verify_class",
]


def verify_structure(classfile: ClassFile) -> None:
    """Step 1: structural sanity of the class file object."""
    if not classfile.name:
        raise VerificationError("class has no name")
    names = [method.name for method in classfile.methods]
    if len(names) != len(set(names)):
        raise VerificationError(
            f"{classfile.name}: duplicate method names"
        )
    field_names = [field.name for field in classfile.fields]
    if len(field_names) != len(set(field_names)):
        raise VerificationError(
            f"{classfile.name}: duplicate field names"
        )


def verify_global_data(classfile: ClassFile) -> None:
    """Step 2: the constant pool is internally consistent."""
    pool = classfile.constant_pool
    size = len(pool)

    def check_index(index: int, expected: type, context: str) -> None:
        if not 1 <= index <= size:
            raise VerificationError(
                f"{classfile.name}: {context} index {index} out of "
                f"range [1, {size}]"
            )
        entry = pool.get(index)
        if not isinstance(entry, expected):
            raise VerificationError(
                f"{classfile.name}: {context} index {index} holds "
                f"{type(entry).__name__}, expected {expected.__name__}"
            )

    for index, entry in pool.entries():
        if isinstance(entry, ClassEntry):
            check_index(entry.name_index, Utf8Entry, f"Class@{index}")
        elif isinstance(entry, StringEntry):
            check_index(entry.utf8_index, Utf8Entry, f"String@{index}")
        elif isinstance(entry, (FieldRefEntry, MethodRefEntry)):
            check_index(
                entry.class_index, ClassEntry, f"MemberRef@{index}"
            )
            check_index(
                entry.name_and_type_index,
                NameAndTypeEntry,
                f"MemberRef@{index}",
            )
        elif isinstance(entry, NameAndTypeEntry):
            check_index(
                entry.name_index, Utf8Entry, f"NameAndType@{index}"
            )
            check_index(
                entry.descriptor_index, Utf8Entry, f"NameAndType@{index}"
            )
    for field in classfile.fields:
        if field.descriptor not in ("I", "A"):
            raise VerificationError(
                f"{classfile.name}.{field.name}: bad field descriptor "
                f"{field.descriptor!r}"
            )


def verify_method(classfile: ClassFile, method: MethodInfo) -> None:
    """Step 3: static checks on one procedure's bytecode.

    Delegates to the typed abstract-interpretation engine
    (:func:`repro.analyze.dataflow.analyze_method`): operand-stack
    depth safety (no underflow, within ``max_stack``, consistent at
    joins), operand well-formedness (pool entry kinds, local slots,
    SYS codes, branch targets), descriptor agreement at returns, and —
    beyond the historical depth-only walk — definite operand *type*
    errors that are guaranteed to fault at runtime.

    Raises:
        VerificationError: On the first violated check.
    """
    # Imported here: repro.analyze also serves non-verifier callers and
    # pulls in the cfg layer; the linker package stays light to import.
    from ..analyze.dataflow import analyze_method

    dataflow = analyze_method(classfile, method)
    if not dataflow.ok:
        raise VerificationError(dataflow.issues[0].message)


def verify_class(classfile: ClassFile) -> None:
    """All static steps (1–3) for a whole class, strict-style."""
    verify_structure(classfile)
    verify_global_data(classfile)
    for method in classfile.methods:
        verify_method(classfile, method)
