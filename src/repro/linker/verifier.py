"""Class file verification, incremental at procedure granularity (§3.1).

The JVM's five verification steps map onto our model as:

1. **File structure** — magic, version, well-formed tables (the
   deserializer enforces this; :func:`verify_structure` re-checks an
   in-memory class).
2. **Global data** — every constant pool reference index is in range
   and of the right type; field descriptors parse.
3. **Per-procedure static checks** — performed *as each procedure
   transfers*: bytecode decodes, branch targets hit instruction
   boundaries, CALL/LDC/GETSTATIC operands resolve to the right pool
   entry types, and the operand stack is statically consistent (no
   underflow, consistent depth at joins, within ``max_stack``).
4. **Runtime checks** — performed as procedures execute (the VM's
   bounds/type checks).

Non-strict execution needs steps 1–2 to run once the global data has
arrived and step 3 to run per method on arrival; the
:class:`IncrementalVerifier` in :mod:`repro.linker.linker` drives that
ordering.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..bytecode import OPCODE_TABLE, Instruction, Opcode, SysCall, offsets_of
from ..classfile import (
    ClassFile,
    ClassEntry,
    FieldRefEntry,
    StringEntry,
    MethodInfo,
    MethodRefEntry,
    NameAndTypeEntry,
    Utf8Entry,
    parse_descriptor,
)
from ..errors import VerificationError

__all__ = [
    "verify_structure",
    "verify_global_data",
    "verify_method",
    "verify_class",
]


def verify_structure(classfile: ClassFile) -> None:
    """Step 1: structural sanity of the class file object."""
    if not classfile.name:
        raise VerificationError("class has no name")
    names = [method.name for method in classfile.methods]
    if len(names) != len(set(names)):
        raise VerificationError(
            f"{classfile.name}: duplicate method names"
        )
    field_names = [field.name for field in classfile.fields]
    if len(field_names) != len(set(field_names)):
        raise VerificationError(
            f"{classfile.name}: duplicate field names"
        )


def verify_global_data(classfile: ClassFile) -> None:
    """Step 2: the constant pool is internally consistent."""
    pool = classfile.constant_pool
    size = len(pool)

    def check_index(index: int, expected: type, context: str) -> None:
        if not 1 <= index <= size:
            raise VerificationError(
                f"{classfile.name}: {context} index {index} out of "
                f"range [1, {size}]"
            )
        entry = pool.get(index)
        if not isinstance(entry, expected):
            raise VerificationError(
                f"{classfile.name}: {context} index {index} holds "
                f"{type(entry).__name__}, expected {expected.__name__}"
            )

    for index, entry in pool.entries():
        if isinstance(entry, ClassEntry):
            check_index(entry.name_index, Utf8Entry, f"Class@{index}")
        elif isinstance(entry, StringEntry):
            check_index(entry.utf8_index, Utf8Entry, f"String@{index}")
        elif isinstance(entry, (FieldRefEntry, MethodRefEntry)):
            check_index(
                entry.class_index, ClassEntry, f"MemberRef@{index}"
            )
            check_index(
                entry.name_and_type_index,
                NameAndTypeEntry,
                f"MemberRef@{index}",
            )
        elif isinstance(entry, NameAndTypeEntry):
            check_index(
                entry.name_index, Utf8Entry, f"NameAndType@{index}"
            )
            check_index(
                entry.descriptor_index, Utf8Entry, f"NameAndType@{index}"
            )
    for field in classfile.fields:
        if field.descriptor not in ("I", "A"):
            raise VerificationError(
                f"{classfile.name}.{field.name}: bad field descriptor "
                f"{field.descriptor!r}"
            )


def _call_effect(
    classfile: ClassFile, instruction: Instruction
) -> Tuple[int, int]:
    pool = classfile.constant_pool
    entry = pool.get(instruction.operand)
    if not isinstance(entry, MethodRefEntry):
        raise VerificationError(
            f"{classfile.name}: CALL operand {instruction.operand} is "
            f"{type(entry).__name__}, expected MethodRefEntry"
        )
    _, _, descriptor = pool.member_ref(instruction.operand)
    parsed = parse_descriptor(descriptor)
    return parsed.arity, 1 if parsed.returns_value else 0


def _sys_effect(instruction: Instruction) -> Tuple[int, int]:
    try:
        return SysCall.STACK_EFFECT[instruction.operand]
    except KeyError as exc:
        raise VerificationError(
            f"unknown SYS code {instruction.operand}"
        ) from exc


def _operand_checks(
    classfile: ClassFile, method: MethodInfo, instruction: Instruction
) -> None:
    pool = classfile.constant_pool
    opcode = instruction.opcode
    if opcode == Opcode.LDC:
        try:
            pool.constant_value(instruction.operand)
        except Exception as exc:
            raise VerificationError(
                f"{classfile.name}.{method.name}: LDC operand "
                f"{instruction.operand} is not a loadable constant"
            ) from exc
    elif opcode in (Opcode.GETSTATIC, Opcode.PUTSTATIC):
        entry = pool.get(instruction.operand)
        if not isinstance(entry, FieldRefEntry):
            raise VerificationError(
                f"{classfile.name}.{method.name}: GETSTATIC/PUTSTATIC "
                f"operand {instruction.operand} is not a FieldRef"
            )
    elif opcode in (Opcode.LOAD, Opcode.STORE):
        if instruction.operand >= method.max_locals:
            raise VerificationError(
                f"{classfile.name}.{method.name}: local slot "
                f"{instruction.operand} >= max_locals "
                f"{method.max_locals}"
            )


def verify_method(classfile: ClassFile, method: MethodInfo) -> None:
    """Step 3: static checks on one procedure's bytecode.

    Runs dataflow over the instruction stream to prove the operand
    stack never underflows, never exceeds ``max_stack``, and has a
    consistent depth at every join point.

    Raises:
        VerificationError: On any violated check.
    """
    instructions = method.instructions
    if not instructions:
        raise VerificationError(
            f"{classfile.name}.{method.name}: empty code"
        )
    descriptor = parse_descriptor(method.descriptor)
    if descriptor.arity > method.max_locals:
        raise VerificationError(
            f"{classfile.name}.{method.name}: {descriptor.arity} "
            f"parameters exceed max_locals {method.max_locals}"
        )
    offsets = offsets_of(instructions)
    offset_to_index = {
        offset: index for index, offset in enumerate(offsets)
    }
    end = offsets[-1] + instructions[-1].size

    depth_at: Dict[int, int] = {0: 0}
    worklist: List[int] = [0]
    visited: Set[int] = set()

    def flow_to(index: int, depth: int, source: str) -> None:
        if index >= len(instructions):
            raise VerificationError(
                f"{classfile.name}.{method.name}: control flows off "
                f"the end after {source}"
            )
        known = depth_at.get(index)
        if known is None:
            depth_at[index] = depth
            worklist.append(index)
        elif known != depth:
            raise VerificationError(
                f"{classfile.name}.{method.name}: inconsistent stack "
                f"depth at instruction {index} ({known} vs {depth})"
            )

    while worklist:
        index = worklist.pop()
        if index in visited:
            continue
        visited.add(index)
        instruction = instructions[index]
        depth = depth_at[index]
        _operand_checks(classfile, method, instruction)

        if instruction.opcode == Opcode.CALL:
            pops, pushes = _call_effect(classfile, instruction)
        elif instruction.opcode == Opcode.SYS:
            pops, pushes = _sys_effect(instruction)
        else:
            info = OPCODE_TABLE[instruction.opcode]
            pops, pushes = info.pops, info.pushes
        depth -= pops
        if depth < 0:
            raise VerificationError(
                f"{classfile.name}.{method.name}: stack underflow at "
                f"instruction {index} ({instruction.mnemonic})"
            )
        depth += pushes
        if depth > method.max_stack:
            raise VerificationError(
                f"{classfile.name}.{method.name}: stack depth {depth} "
                f"exceeds max_stack {method.max_stack}"
            )

        info = instruction.info
        if info.is_return:
            expected = 0
            if instruction.opcode == Opcode.RETURN and (
                descriptor.returns_value
            ):
                raise VerificationError(
                    f"{classfile.name}.{method.name}: RETURN in a "
                    "value-returning method"
                )
            if instruction.opcode == Opcode.IRETURN and not (
                descriptor.returns_value
            ):
                raise VerificationError(
                    f"{classfile.name}.{method.name}: IRETURN in a "
                    "void method"
                )
            if depth != expected:
                raise VerificationError(
                    f"{classfile.name}.{method.name}: {depth} values "
                    f"left on the stack at return"
                )
            continue
        if info.is_branch:
            target_offset = instruction.branch_target(offsets[index])
            target = offset_to_index.get(target_offset)
            if target is None or not 0 <= target_offset < end:
                raise VerificationError(
                    f"{classfile.name}.{method.name}: branch at "
                    f"instruction {index} targets invalid offset "
                    f"{target_offset}"
                )
            flow_to(target, depth, instruction.mnemonic)
            if info.is_conditional:
                flow_to(index + 1, depth, instruction.mnemonic)
            continue
        flow_to(index + 1, depth, instruction.mnemonic)


def verify_class(classfile: ClassFile) -> None:
    """All static steps (1–3) for a whole class, strict-style."""
    verify_structure(classfile)
    verify_global_data(classfile)
    for method in classfile.methods:
        verify_method(classfile, method)
