"""The scoreboard-driven multi-link issue engine.

:class:`IssueEngine` presents the same simulator-facing protocol as the
single-link :class:`~repro.transfer.streams.StreamEngine` — ``time``,
``arrived``, ``arrival_times``, ``run_until``, ``run_until_unit``,
``total_delivered``, ``remaining_bytes`` — but behind the facade it
drives one :class:`~repro.transfer.streams.StreamEngine` *per network
link*, all advanced in lockstep to the globally earliest event
boundary (a unit completion on any link, a scheduled link outage, or
an external wake-up).  At every boundary it:

1. collects units that landed on each link and feeds them to the
   :class:`~repro.sched.scoreboard.Scoreboard`, which cascades
   retires (a unit's observable arrival is its *retire* time — after
   its hazard dependencies — never its raw landing);
2. processes link outages: the dead link's in-flight units go back to
   ``READY`` and retransmit on the survivors;
3. dispatches: asks the scoreboard for the ready set and issues
   grains to links under the configured arbitration.

Two dispatch grains exist.  ``"stream"`` issues whole in-order unit
streams and admits every ready item at once (the 1-link parallel /
interleaved fidelity modes — byte-for-byte equivalent to the original
controllers by construction, since a single link sees the identical
request sequence on an identical engine).  ``"unit"`` issues one
transfer unit per idle link — true out-of-order striping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import TransferError
from ..transfer import NetworkLink, TransferUnit
from ..transfer.streams import Stream, StreamEngine
from .scoreboard import IssueItem, ItemState, Scoreboard

if TYPE_CHECKING:  # pragma: no cover
    from ..observe import MetricsRegistry, TraceRecorder

__all__ = ["LinkOutage", "LinkChannel", "IssueEngine"]

_EPSILON = 1e-6

#: How an engine picks the link for a ready grain.
LINK_CHOICES = ("earliest_finish", "round_robin", "least_loaded")


@dataclass(frozen=True)
class LinkOutage:
    """A link death scheduled into a striped run (chaos testing).

    Attributes:
        at_cycles: Simulated cycle at which the link goes dark.
        link_index: Index into the engine's link list.
    """

    at_cycles: float
    link_index: int

    def __post_init__(self) -> None:
        if self.at_cycles < 0:
            raise TransferError(
                f"outage time must be >= 0, got {self.at_cycles}"
            )
        if self.link_index < 0:
            raise TransferError(
                f"outage link index must be >= 0, got {self.link_index}"
            )


class LinkChannel:
    """One link plus its private stream engine and liveness flag."""

    def __init__(
        self,
        index: int,
        link: NetworkLink,
        max_streams: Optional[int],
    ) -> None:
        self.index = index
        self.link = link
        self.engine = StreamEngine(link, max_streams=max_streams)
        self.alive = True
        #: Event/metric label; the index disambiguates identical links.
        self.label = f"{index}:{link.name}"
        #: Arrivals already consumed by the facade's collect pass.
        self.collected = 0


class IssueEngine:
    """Scoreboard issue engine over one or more links.

    Args:
        links: The link set (1+ links, possibly heterogeneous).
        scoreboard: Pre-populated scoreboard of issue grains.
        grain: ``"stream"`` (whole in-order streams, processor-shared
            per link) or ``"unit"`` (one unit per idle link).
        link_choice: Arbitration among candidate links —
            ``"earliest_finish"`` (fastest link for the grain, i.e.
            weighted by bandwidth), ``"round_robin"``, or
            ``"least_loaded"`` (fewest remaining bytes; the stream
            grain's default).
        max_streams: Per-link concurrent stream cap for the stream
            grain (unit grain always runs one stream per link).
        outages: Scheduled link deaths (unit grain only).
        recorder: Optional trace recorder for ``unit_issued`` /
            ``link_busy`` / ``stripe_rebalance`` events.
        metrics: Optional registry for the ``sched_*`` metric
            families.
        on_issue: Optional hook invoked after every dispatch (the
            striped controller uses it for ``schedule_decision``
            events).
    """

    def __init__(
        self,
        links: Sequence[NetworkLink],
        scoreboard: Scoreboard,
        grain: str = "unit",
        link_choice: str = "earliest_finish",
        max_streams: Optional[int] = None,
        outages: Sequence[LinkOutage] = (),
        recorder: Optional["TraceRecorder"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        on_issue: Optional[
            Callable[[IssueItem, "LinkChannel"], None]
        ] = None,
    ) -> None:
        if not links:
            raise TransferError("IssueEngine needs at least one link")
        if grain not in ("stream", "unit"):
            raise TransferError(f"unknown issue grain {grain!r}")
        if link_choice not in LINK_CHOICES:
            raise TransferError(
                f"unknown link choice {link_choice!r}; "
                f"known: {LINK_CHOICES}"
            )
        per_link = max_streams if grain == "stream" else 1
        self.channels = [
            LinkChannel(index, link, per_link)
            for index, link in enumerate(links)
        ]
        for outage in outages:
            if outage.link_index >= len(self.channels):
                raise TransferError(
                    f"outage references link {outage.link_index}, "
                    f"but only {len(self.channels)} links exist"
                )
        if outages and grain == "stream":
            raise TransferError(
                "link outages require a unit-grain policy"
            )
        self.scoreboard = scoreboard
        self.grain = grain
        self.link_choice = link_choice
        self.recorder = recorder
        self.metrics = metrics
        self.time = 0.0
        #: Unit → *retire* time: what the co-simulator observes.
        self.arrival_times: Dict[TransferUnit, float] = {}
        self._on_issue = on_issue
        self._streams: Dict[str, Tuple[LinkChannel, Stream]] = {}
        self._outages: List[LinkOutage] = sorted(
            outages, key=lambda o: o.at_cycles
        )
        self._rr_cursor = 0
        self._busy_emitted: Dict[str, bool] = {}

    # -- simulator-facing protocol ----------------------------------------

    def arrived(self, unit: TransferUnit) -> bool:
        return unit in self.arrival_times

    def arrival_time(self, unit: TransferUnit) -> float:
        try:
            return self.arrival_times[unit]
        except KeyError as exc:
            raise TransferError(f"unit has not arrived: {unit}") from exc

    @property
    def total_delivered(self) -> float:
        """Bytes pushed over every link, including bytes a link
        outage later stranded."""
        return sum(ch.engine.total_delivered for ch in self.channels)

    @property
    def remaining_bytes(self) -> float:
        """Undelivered bytes of grains already on live links
        (matching the single-engine semantics: never-requested grains
        are not counted)."""
        return sum(
            ch.engine.remaining_bytes for ch in self._live()
        )

    @property
    def idle(self) -> bool:
        return all(ch.engine.idle for ch in self._live())

    def run_until(
        self,
        target_time: float,
        wakeup: Optional[
            Callable[["IssueEngine"], Optional[float]]
        ] = None,
        on_advance: Optional[Callable[["IssueEngine"], None]] = None,
    ) -> None:
        """Advance every link in lockstep to ``target_time``."""
        if target_time < self.time - _EPSILON:
            raise TransferError(
                f"cannot run backwards: {target_time} < {self.time}"
            )
        while self.time < target_time:
            self._advance_one_boundary(target_time, wakeup, on_advance)

    def run_until_unit(
        self,
        unit: TransferUnit,
        wakeup: Optional[
            Callable[["IssueEngine"], Optional[float]]
        ] = None,
        on_advance: Optional[Callable[["IssueEngine"], None]] = None,
    ) -> float:
        """Advance until ``unit`` retires; return its arrival time.

        Raises:
            TransferError: If every link goes idle with nothing left
                to dispatch first (a scheduling bug), or all links
                died.
        """
        while not self.arrived(unit):
            self._process_outages()
            if self.idle:
                self.dispatch()
            if self.idle:
                wake = wakeup(self) if wakeup is not None else None
                if wake is not None and wake > self.time:
                    self.time = wake
                    for channel in self._live():
                        # Idle engines: a pure clock jump, so streams
                        # issued next start at the facade's time.
                        channel.engine.run_until(self.time)
                    self._collect()
                    self.dispatch()
                    if on_advance is not None:
                        on_advance(self)
                    continue
                raise TransferError(
                    f"engine idle but unit never arrived: {unit}"
                )
            self._advance_one_boundary(math.inf, wakeup, on_advance)
        return self.arrival_times[unit]

    # -- dispatch ----------------------------------------------------------

    def dispatch(self) -> None:
        """Issue every ready grain the arbitration allows right now."""
        ready = self.scoreboard.ready_items(self._delivered_for)
        if not ready:
            return
        if self.grain == "stream":
            for item in ready:
                self._issue(item, self._choose(item, self._live()),
                            front=item.escalated)
        else:
            free = [ch for ch in self._live() if ch.engine.idle]
            for item in ready:
                if not free:
                    break
                channel = self._choose(item, free)
                free.remove(channel)
                self._issue(item, channel)

    def demand_issue(self, label: str) -> None:
        """Demand-fetch correction: put an unissued grain on the wire
        now, at the front of any queue (stream grain), or at the top
        of the next arbitration round (unit grain)."""
        item = self.scoreboard.items[label]
        if item.state not in (ItemState.WAITING, ItemState.READY):
            return
        self.scoreboard.escalate(label)
        if self.grain == "stream":
            self._issue(item, self._choose(item, self._live()),
                        front=True)
        else:
            self.dispatch()

    def stream_of(
        self, label: str
    ) -> Optional[Tuple[LinkChannel, Stream]]:
        """The channel and live stream a grain issued on, if any."""
        return self._streams.get(label)

    def rebalance_event(self, reason: str, **extra: object) -> None:
        """Emit one ``stripe_rebalance`` event + metric."""
        if self.recorder is not None:
            self.recorder.stripe_rebalance(
                self.time, reason=reason, **extra
            )
        if self.metrics is not None:
            self.metrics.counter(
                "sched_rebalances_total", {"reason": reason}
            ).inc()

    # -- internals ---------------------------------------------------------

    def _live(self) -> List[LinkChannel]:
        channels = [ch for ch in self.channels if ch.alive]
        if not channels:
            raise TransferError(
                "all links are down: transfer cannot complete"
            )
        return channels

    def _delivered_for(self, item: IssueItem) -> float:
        total = 0.0
        for name in item.watermark_classes:
            for ch in self.channels:
                total += ch.engine.delivered_per_stream.get(name, 0.0)
        return total

    def _choose(
        self, item: IssueItem, candidates: List[LinkChannel]
    ) -> LinkChannel:
        if len(candidates) == 1:
            return candidates[0]
        if self.link_choice == "round_robin":
            count = len(self.channels)
            for offset in range(count):
                index = (self._rr_cursor + offset) % count
                channel = self.channels[index]
                if channel in candidates:
                    self._rr_cursor = index + 1
                    return channel
            return candidates[0]  # pragma: no cover - candidates ⊆ channels
        if self.link_choice == "least_loaded":
            return min(
                candidates,
                key=lambda ch: (ch.engine.remaining_bytes, ch.index),
            )
        # earliest_finish: the link that would land this grain first
        # (idle candidates ⇒ weighted by bandwidth).
        return min(
            candidates,
            key=lambda ch: (
                item.size * ch.link.cycles_per_byte,
                ch.index,
            ),
        )

    def _issue(
        self, item: IssueItem, channel: LinkChannel, front: bool = False
    ) -> None:
        stream = channel.engine.request_stream(
            item.label, item.units, front=front
        )
        self.scoreboard.mark_issued(
            item.label, channel.index, self.time
        )
        self._streams[item.label] = (channel, stream)
        if self.recorder is not None:
            self.recorder.unit_issued(
                self.time,
                class_name=item.class_name,
                link=channel.label,
                label=item.label,
                bytes=item.size,
                escalated=item.escalated,
            )
        if self.metrics is not None:
            labels = {"link": channel.label}
            self.metrics.counter(
                "sched_units_issued_total", labels
            ).inc()
            self.metrics.counter(
                "sched_bytes_issued_total", labels
            ).inc(float(item.size))
            if item.escalated:
                self.metrics.counter("sched_escalations_total").inc()
        if self._on_issue is not None:
            self._on_issue(item, channel)

    def _advance_one_boundary(
        self,
        limit: float,
        wakeup: Optional[Callable[["IssueEngine"], Optional[float]]],
        on_advance: Optional[Callable[["IssueEngine"], None]],
    ) -> None:
        self._process_outages()
        step_to = self._next_boundary(limit, wakeup)
        for ch in self._live():
            engine = ch.engine
            dt = engine.next_event_dt()
            completes = dt is not None and engine.time + dt <= step_to
            if engine.time < step_to or completes:
                engine.advance(step_to)
        self.time = max(self.time, step_to)
        self._collect()
        self._process_outages()
        self.dispatch()
        if on_advance is not None:
            on_advance(self)

    def _next_boundary(
        self,
        limit: float,
        wakeup: Optional[Callable[["IssueEngine"], Optional[float]]],
    ) -> float:
        step_to = limit
        for ch in self._live():
            dt = ch.engine.next_event_dt()
            if dt is not None:
                step_to = min(step_to, ch.engine.time + dt)
        if self._outages:
            at = self._outages[0].at_cycles
            if self.time < at < step_to:
                step_to = at
        if wakeup is not None:
            wake = wakeup(self)
            if (
                wake is not None
                and self.time + _EPSILON < wake < step_to
            ):
                step_to = wake
        return step_to

    def _collect(self) -> None:
        for ch in self.channels:
            arrivals = ch.engine.arrival_times
            if len(arrivals) == ch.collected:
                continue
            landed = list(arrivals.items())[ch.collected:]
            ch.collected = len(arrivals)
            for unit, land_time in landed:
                for retired, retire_time in self.scoreboard.mark_landed(
                    unit, land_time
                ):
                    self.arrival_times[retired] = retire_time
                self._maybe_emit_busy(unit, land_time, ch)

    def _maybe_emit_busy(
        self, unit: TransferUnit, land_time: float, channel: LinkChannel
    ) -> None:
        label = self.scoreboard.label_of(unit)
        item = self.scoreboard.items[label]
        if item.state is not ItemState.LANDED:
            return
        if self._busy_emitted.get(label):
            return
        self._busy_emitted[label] = True
        issued_at = item.issue_time if item.issue_time is not None else 0.0
        duration = land_time - issued_at
        if self.recorder is not None:
            self.recorder.link_busy(
                issued_at,
                link=channel.label,
                duration=duration,
                label=label,
            )
        if self.metrics is not None:
            self.metrics.counter(
                "sched_link_busy_cycles", {"link": channel.label}
            ).inc(duration)

    def _process_outages(self) -> None:
        while (
            self._outages
            and self._outages[0].at_cycles <= self.time
        ):
            outage = self._outages.pop(0)
            channel = self.channels[outage.link_index]
            if not channel.alive:
                continue
            channel.alive = False
            self._live()  # raises if that was the last link
            if self.metrics is not None:
                self.metrics.counter(
                    "sched_link_outages_total",
                    {"link": channel.label},
                ).inc()
            lost: List[str] = []
            for stream in list(channel.engine.active) + list(
                channel.engine.waiting
            ):
                label = stream.name
                item = self.scoreboard.items.get(label)
                if item is None or item.state is not ItemState.ISSUED:
                    continue
                remaining = tuple(stream.units)
                if not remaining:
                    continue
                self.scoreboard.requeue(label, remaining)
                self._streams.pop(label, None)
                lost.append(label)
            # The dead channel never advances again; drop its queued
            # work so facade-wide accounting stays honest.
            channel.engine.active.clear()
            channel.engine.waiting.clear()
            self.rebalance_event(
                "link_outage",
                link=channel.label,
                requeued=len(lost),
            )
            self.dispatch()
