"""repro.sched — scoreboard-based out-of-order transfer issue engine.

The transfer methodologies of the paper (parallel §5.1, interleaved
§5.2) are *in-order* within a stream and assume a single network
link.  This package generalises both with the classic scoreboard
structure: transfer units are instructions, network links are
functional units, and hazard edges (a method unit needs its class's
global data; the greedy schedule's byte watermarks gate starts) are
data dependences.  Units issue out of order across any number of
possibly heterogeneous links; a unit's observable *arrival* is its
retire time — after its hazards — so execution semantics never
weaken.

Entry points:

* :func:`run_striped` — multi-link twin of
  :func:`repro.core.run_nonstrict`;
* :class:`StripedController` — plugs into
  :class:`repro.core.Simulator` like any other controller;
* :class:`IssueEngine` / :class:`Scoreboard` — the engine room;
* :class:`LinkOutage` — schedule a link death mid-stripe (chaos
  testing: the survivors re-issue the dead link's unlanded units).

On a single link the ``"parallel"`` and ``"interleaved"`` policies
are byte-for-byte equivalent to the original controllers: the
identical request sequence reaches an identical stream engine, so
every arrival time matches to the last float bit (property-tested
across all six paper workloads).
"""

from __future__ import annotations

from .engine import IssueEngine, LinkChannel, LinkOutage
from .scoreboard import IssueItem, ItemState, Scoreboard
from .striped import (
    POLICIES,
    StripedController,
    StripedEntry,
    run_striped,
    striped_sequence,
)

__all__ = [
    "IssueEngine",
    "IssueItem",
    "ItemState",
    "LinkChannel",
    "LinkOutage",
    "POLICIES",
    "Scoreboard",
    "StripedController",
    "StripedEntry",
    "run_striped",
    "striped_sequence",
]
