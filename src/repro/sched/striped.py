"""Multi-link striped transfer: the scoreboard engine's controller.

:class:`StripedController` plugs into the co-simulator exactly like
the paper's parallel and interleaved controllers, but builds a
multi-link :class:`~repro.sched.engine.IssueEngine` instead of a
single :class:`~repro.transfer.streams.StreamEngine`.  Five
arbitration policies are supported:

* ``"parallel"`` — the §5.1 methodology verbatim: per-class stream
  grains gated by the greedy schedule's byte watermarks, demand-fetch
  correction at the queue front.  On one link this is byte-for-byte
  equivalent to :class:`~repro.transfer.ParallelController` (the
  identical request sequence reaches an identical engine); on several
  links streams spread across them least-loaded-first.
* ``"interleaved"`` — the §5.2 methodology: on one link the entire
  virtual interleaved file issues as a single stream grain
  (byte-for-byte equivalent to
  :class:`~repro.transfer.InterleavedController`); on several links
  it degrades gracefully to sequence-ordered unit striping.
* ``"deadline"`` — out-of-order unit striping, earliest deadline
  first: each unit's deadline is its method's predicted first-use
  time (``instructions_before × CPI``, the first-use order's
  annotation built for exactly this purpose).
* ``"round_robin"`` — sequence-ordered units dealt round-robin
  across links.
* ``"weighted"`` — sequence-ordered units, each issued to the link
  that lands it earliest (weighted by bandwidth).

The native striping policies (deadline / round_robin / weighted)
handle mispredictions by *hazard-priority escalation*: the stalled
method's unit (and its class's global unit) jump to the top of the
next arbitration round — the scoreboard's generalisation of §5.1's
front-of-queue demand fetch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..errors import TransferError
from ..program import MethodId, Program
from ..reorder import FirstUseOrder
from ..transfer import (
    NetworkLink,
    TransferController,
    TransferUnit,
)
from ..transfer.interleaved import build_interleaved_file
from ..transfer.schedule import TransferSchedule, build_schedule
from ..transfer.streams import StreamEngine
from ..transfer.units import (
    ClassTransferPlan,
    TransferPolicy,
    UnitKind,
    build_program_plans,
)
from .engine import IssueEngine, LinkChannel, LinkOutage
from .scoreboard import IssueItem, ItemState, Scoreboard

if TYPE_CHECKING:  # pragma: no cover
    from ..core.simulation import SimulationResult
    from ..observe import TraceRecorder
    from ..vm import ExecutionTrace

__all__ = [
    "POLICIES",
    "StripedEntry",
    "StripedController",
    "striped_sequence",
    "run_striped",
]

#: The arbitration policies :class:`StripedController` accepts.
POLICIES = (
    "parallel",
    "interleaved",
    "deadline",
    "round_robin",
    "weighted",
)

_LINK_CHOICE_OF_POLICY = {
    "parallel": "least_loaded",
    "interleaved": "earliest_finish",
    "deadline": "earliest_finish",
    "round_robin": "round_robin",
    "weighted": "earliest_finish",
}


@dataclass(frozen=True)
class StripedEntry:
    """One transfer unit with its striping priority.

    Attributes:
        unit: The unit.
        deadline: Predicted first-use time in cycles (``math.inf``
            for units no traced method needs).
        seq: Position in the virtual interleaved file (sequence-
            ordered policies, and the deadline tie-break).
    """

    unit: TransferUnit
    deadline: float
    seq: int

    def priority_key(self) -> Tuple[float, int]:
        return (self.deadline, self.seq)


def striped_sequence(
    plans: Dict[str, ClassTransferPlan],
    order: FirstUseOrder,
    cpi: float,
) -> List[StripedEntry]:
    """Annotate the interleaved unit sequence with issue deadlines.

    Method units take their method's predicted first-use time
    (``instructions_before × CPI``); each class's leading global unit
    takes the earliest deadline among the class's method units (it
    must retire before any of them); trailing / unpredicted units get
    ``math.inf``.
    """
    if cpi <= 0:
        raise TransferError(f"CPI must be positive, got {cpi}")
    sequence = build_interleaved_file(plans, order)
    deadlines: List[float] = []
    for unit in sequence:
        if unit.kind == UnitKind.METHOD and unit.method is not None:
            if unit.method in order:
                entry = order.entry_for(unit.method)
                deadlines.append(entry.instructions_before * cpi)
            else:
                deadlines.append(math.inf)
        else:
            deadlines.append(math.inf)
    earliest_of_class: Dict[str, float] = {}
    for unit, deadline in zip(sequence, deadlines):
        if unit.kind == UnitKind.METHOD:
            current = earliest_of_class.get(unit.class_name, math.inf)
            earliest_of_class[unit.class_name] = min(current, deadline)
    entries: List[StripedEntry] = []
    for index, (unit, deadline) in enumerate(zip(sequence, deadlines)):
        if unit.kind in (UnitKind.GLOBAL_DATA, UnitKind.GLOBAL_FIRST):
            deadline = earliest_of_class.get(unit.class_name, math.inf)
        entries.append(
            StripedEntry(unit=unit, deadline=deadline, seq=index)
        )
    return entries


class StripedController(TransferController):
    """Scoreboard-scheduled transfer across one or more links."""

    def __init__(
        self,
        program: Program,
        order: FirstUseOrder,
        links: Sequence[NetworkLink],
        cpi: float,
        policy: str = "deadline",
        max_streams: Optional[int] = None,
        data_partitioning: bool = False,
        outages: Sequence[LinkOutage] = (),
        escalate: bool = True,
    ) -> None:
        if policy not in POLICIES:
            raise TransferError(
                f"unknown striping policy {policy!r}; known: {POLICIES}"
            )
        if not links:
            raise TransferError(
                "StripedController needs at least one link"
            )
        unit_policy = (
            TransferPolicy.DATA_PARTITIONED
            if data_partitioning
            else TransferPolicy.NON_STRICT
        )
        self.program = program
        self.order = order
        self.links: Tuple[NetworkLink, ...] = tuple(links)
        self.cpi = float(cpi)
        self.policy = policy
        self.max_streams = max_streams
        self.escalate = escalate
        self.outages: Tuple[LinkOutage, ...] = tuple(outages)
        self.name = f"striped-{policy}x{len(self.links)}"
        self.plans: Dict[str, ClassTransferPlan] = build_program_plans(
            program, unit_policy
        )
        self.schedule: Optional[TransferSchedule] = None
        self.demand_fetches: List[MethodId] = []
        self._grain = "stream" if self._fidelity_mode() else "unit"
        if self.outages and self._grain == "stream":
            raise TransferError(
                f"link outages are not supported by the "
                f"{policy!r} policy on this link count"
            )
        self._engine: Optional[IssueEngine] = None

    def _fidelity_mode(self) -> bool:
        """Stream-grain modes reproducing the paper controllers."""
        if self.policy == "parallel":
            return True
        return self.policy == "interleaved" and len(self.links) == 1

    # -- scoreboard construction ------------------------------------------

    def _build_scoreboard(self) -> Scoreboard:
        board = Scoreboard()
        if self.policy == "parallel":
            self.schedule = build_schedule(
                self.program, self.plans, self.order,
                self.links[0], self.cpi,
            )
            for seq, start in enumerate(self.schedule.in_start_order()):
                plan = self.plans[start.class_name]
                board.add_item(
                    IssueItem(
                        label=start.class_name,
                        units=plan.units,
                        seq=seq,
                        watermark_bytes=start.start_after_bytes,
                        watermark_classes=start.dependency_classes,
                    )
                )
            return board
        if self.policy == "interleaved" and len(self.links) == 1:
            sequence = build_interleaved_file(self.plans, self.order)
            board.add_item(
                IssueItem(
                    label="interleaved",
                    units=tuple(sequence),
                    seq=0,
                )
            )
            return board
        entries = striped_sequence(self.plans, self.order, self.cpi)
        use_deadlines = self.policy == "deadline"
        leading: Dict[str, TransferUnit] = {}
        for entry in entries:
            if entry.unit.kind in (
                UnitKind.GLOBAL_DATA,
                UnitKind.GLOBAL_FIRST,
            ):
                leading[entry.unit.class_name] = entry.unit
        for entry in entries:
            board.add_item(
                IssueItem(
                    label=self._unit_label(entry),
                    units=(entry.unit,),
                    seq=entry.seq,
                    deadline=(
                        entry.deadline if use_deadlines else math.inf
                    ),
                )
            )
            lead = leading.get(entry.unit.class_name)
            if lead is not None and entry.unit is not lead:
                # Retire hazard: nothing of a class is usable before
                # its global unit — the in-order stream invariant,
                # made explicit so landings may happen out of order.
                board.add_unit_dep(entry.unit, lead)
        return board

    @staticmethod
    def _unit_label(entry: StripedEntry) -> str:
        unit = entry.unit
        if unit.method is not None:
            tail = unit.method.method_name
        else:
            tail = unit.kind.value
        return f"{entry.seq}:{unit.class_name}.{tail}"

    # -- controller interface ---------------------------------------------

    def build_engine(self, link: NetworkLink) -> StreamEngine:
        engine = IssueEngine(
            self.links,
            self._build_scoreboard(),
            grain=self._grain,
            link_choice=_LINK_CHOICE_OF_POLICY[self.policy],
            max_streams=self.max_streams,
            outages=self.outages,
            recorder=self.recorder,
            on_issue=self._on_issue,
        )
        self._engine = engine
        # The simulator's `link` argument is links[0]; the facade
        # satisfies the same protocol as a StreamEngine.
        return engine  # type: ignore[return-value]

    def setup(self, engine: StreamEngine) -> None:
        issue_engine = self._issue_engine(engine)
        issue_engine.recorder = self.recorder
        issue_engine.dispatch()

    def required_unit(self, method_id: MethodId) -> TransferUnit:
        plan = self.plans.get(method_id.class_name)
        if plan is None:
            raise TransferError(
                f"no transfer plan for class {method_id.class_name!r}"
            )
        return plan.method_unit(method_id.method_name)

    def next_wakeup(self, engine: StreamEngine) -> Optional[float]:
        # Everything is event-driven off unit completions; no clock
        # wake-ups are needed (mirrors the parallel controller).
        return None

    def on_advance(self, engine: StreamEngine) -> None:
        # The issue engine dispatches internally at every boundary.
        return None

    def on_stall(self, engine: StreamEngine, method_id: MethodId) -> None:
        issue_engine = self._issue_engine(engine)
        if self.policy == "parallel":
            self._parallel_stall(issue_engine, method_id)
            return
        if self._grain == "stream":
            # 1-link interleaved: the whole file is already in
            # flight, in order; nothing can be reordered.
            return
        if not self.escalate:
            return
        self._escalate_stall(issue_engine, method_id)

    # -- misprediction correction -----------------------------------------

    def _parallel_stall(
        self, engine: IssueEngine, method_id: MethodId
    ) -> None:
        """Mirror of the parallel controller's demand fetch."""
        class_name = method_id.class_name
        item = engine.scoreboard.items.get(class_name)
        if item is None:
            raise TransferError(
                f"no transfer plan for class {class_name!r}"
            )
        if item.state in (ItemState.WAITING, ItemState.READY):
            self.demand_fetches.append(method_id)
            self._demand_event(engine, method_id)
            engine.demand_issue(class_name)
            return
        entry = engine.stream_of(class_name)
        if entry is not None:
            channel, stream = entry
            if not stream.started and not stream.done:
                self.demand_fetches.append(method_id)
                self._demand_event(engine, method_id)
                channel.engine.promote(stream)
                if self.recorder is not None:
                    self.recorder.schedule_decision(
                        engine.time,
                        action="promote",
                        target=class_name,
                        reason="demand_fetch",
                    )

    def _escalate_stall(
        self, engine: IssueEngine, method_id: MethodId
    ) -> None:
        """Hazard-priority escalation for the native policies."""
        board = engine.scoreboard
        try:
            needed = self.required_unit(method_id)
        except TransferError:
            return
        labels = [board.label_of(needed)]
        plan = self.plans[method_id.class_name]
        lead = plan.units[0]
        if lead is not needed:
            try:
                labels.append(board.label_of(lead))
            except TransferError:
                pass
        escalated = [
            label for label in labels if board.escalate(label)
        ]
        if not escalated:
            return
        self.demand_fetches.append(method_id)
        self._demand_event(engine, method_id)
        engine.rebalance_event(
            "demand_escalation",
            method=str(method_id),
            items=len(escalated),
        )
        engine.dispatch()

    def _demand_event(
        self, engine: IssueEngine, method_id: MethodId
    ) -> None:
        if self.recorder is not None:
            self.recorder.demand_fetch(
                engine.time, method=str(method_id)
            )

    # -- plumbing ----------------------------------------------------------

    def _issue_engine(self, engine: StreamEngine) -> IssueEngine:
        if not isinstance(engine, IssueEngine):
            raise TransferError(
                "StripedController must drive the IssueEngine it "
                "built (got a bare StreamEngine)"
            )
        return engine

    def _on_issue(self, item: IssueItem, channel: LinkChannel) -> None:
        if self.recorder is None:
            return
        if self.policy == "parallel" and self.schedule is not None:
            start = self.schedule.start_for(item.label)
            self.recorder.schedule_decision(
                self._engine.time if self._engine is not None else 0.0,
                action=(
                    "demand_start" if item.escalated else "stream_start"
                ),
                target=item.label,
                start_after_bytes=start.start_after_bytes,
                required_prefix_bytes=start.required_prefix_bytes,
            )


def run_striped(
    program: Program,
    trace: "ExecutionTrace",
    order: FirstUseOrder,
    links: Sequence[NetworkLink],
    cpi: float,
    policy: str = "deadline",
    max_streams: Optional[int] = None,
    data_partitioning: bool = False,
    outages: Sequence[LinkOutage] = (),
    escalate: bool = True,
    restructure: bool = True,
    recorder: Optional["TraceRecorder"] = None,
    engine: Optional[str] = None,
) -> "SimulationResult":
    """Co-simulate one striped configuration end to end.

    The multi-link twin of :func:`repro.core.run_nonstrict`: the
    program is restructured into first-use order (unless
    ``restructure=False``), a :class:`StripedController` is built
    over the link set, and the co-simulator replays the trace.
    ``engine="batched"`` routes the run through the generic batched
    loop in :mod:`repro.core.fastsim` (the :class:`IssueEngine` still
    advances through identical event boundaries, so results are
    cycle-exact).

    Returns:
        The :class:`repro.core.SimulationResult`.
    """
    from ..core.simulation import Simulator
    from ..reorder import restructure as apply_restructure

    target = (
        apply_restructure(program, order) if restructure else program
    )
    controller = StripedController(
        target,
        order,
        links,
        cpi,
        policy=policy,
        max_streams=max_streams,
        data_partitioning=data_partitioning,
        outages=outages,
        escalate=escalate,
    )
    simulator = Simulator(
        target,
        trace,
        controller,
        links[0],
        cpi,
        recorder=recorder,
        engine=engine,
    )
    return simulator.run()
