"""Scoreboard: issue state and hazard tracking for transfer units.

The scoreboard borrows the classic out-of-order processor structure
(CDC 6600): transfer units play the role of instructions, network
links play the role of functional units, and hazard edges play the
role of data dependences.  Each :class:`IssueItem` is one *issue
grain* — either a single transfer unit (multi-link striping) or a
whole in-order stream (the 1-link fidelity modes) — and moves through
``WAITING → READY → ISSUED → LANDED``:

* ``WAITING``: a hazard still blocks issue — the item's byte
  watermark (the greedy schedule's ``start_after_bytes`` trigger,
  paper §5.1) has not been reached;
* ``READY``: every issue hazard is clear; the arbiter may dispatch
  the item to a link;
* ``ISSUED``: on the wire on one link;
* ``LANDED``: every byte of the item has arrived.

Landing is not the end of the story: a unit *retires* only once every
unit it depends on has retired too (a method unit needs its class's
global-data unit, exactly as an out-of-order core retires in
dependence order even though execution completes out of order).  The
retire time — ``max(landing, dependency retires)`` — is what the
co-simulator observes as the unit's arrival, so out-of-order landings
never let execution start before the paper's semantics allow.

Demand-fetch correction (§5.1 misprediction handling) appears here as
*hazard-priority escalation*: an escalated item sorts before every
deadline at the next arbitration round.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import TransferError
from ..transfer import TransferUnit

__all__ = ["ItemState", "IssueItem", "Scoreboard"]

#: Slop applied to byte-watermark comparisons, matching the parallel
#: controller's trigger tolerance exactly (required for 1-link
#: equivalence).
WATERMARK_SLOP = 1e-9


class ItemState(enum.Enum):
    """Where an issue grain is in its lifecycle."""

    WAITING = "waiting"
    READY = "ready"
    ISSUED = "issued"
    LANDED = "landed"


@dataclass
class IssueItem:
    """One issue grain: a unit (or in-order unit stream) plus hazards.

    Attributes:
        label: Unique scoreboard key; doubles as the stream name on
            the link engine.
        units: The grain's units, delivered strictly in this order.
        seq: Program-order sequence number (ties and sequence-ordered
            policies use it).
        deadline: Cycles by which the grain should land (deadline
            arbitration); ``math.inf`` when unconstrained.
        watermark_bytes: Delivered-byte trigger: the item stays
            ``WAITING`` until the watermark classes have delivered
            this many bytes (0 = immediately ready).
        watermark_classes: Stream labels whose delivered bytes count
            toward the watermark.
        state: Current lifecycle state.
        escalated: Demand-fetch escalation flag; sorts before every
            deadline.
        channel: Index of the link the item issued on, once issued.
        issue_time: Cycle at which the item issued, once issued.
    """

    label: str
    units: Tuple[TransferUnit, ...]
    seq: int
    deadline: float = math.inf
    watermark_bytes: float = 0.0
    watermark_classes: Tuple[str, ...] = ()
    state: ItemState = ItemState.WAITING
    escalated: bool = False
    channel: Optional[int] = None
    issue_time: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.units:
            raise TransferError(f"issue item {self.label!r} has no units")

    @property
    def size(self) -> int:
        """Total wire bytes of the grain."""
        return sum(unit.size for unit in self.units)

    @property
    def class_name(self) -> str:
        """Owning class when unambiguous, else the label."""
        names = {unit.class_name for unit in self.units}
        if len(names) == 1:
            return next(iter(names))
        return self.label

    def priority_key(self) -> Tuple[int, float, int]:
        """Sort key for arbitration: escalated, then deadline, then
        program order."""
        return (0 if self.escalated else 1, self.deadline, self.seq)


@dataclass
class Scoreboard:
    """Tracks every issue grain's state and every unit's hazards.

    The scoreboard is pure bookkeeping: it never touches a link.  The
    :class:`~repro.sched.engine.IssueEngine` asks it which items are
    ready, tells it what was issued and what landed, and reads back
    retire times.
    """

    items: Dict[str, IssueItem] = field(default_factory=dict)
    land_times: Dict[TransferUnit, float] = field(default_factory=dict)
    retire_times: Dict[TransferUnit, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._label_of_unit: Dict[TransferUnit, str] = {}
        self._unit_deps: Dict[TransferUnit, Tuple[TransferUnit, ...]] = {}
        self._dependents: Dict[TransferUnit, List[TransferUnit]] = {}

    # -- construction ------------------------------------------------------

    def add_item(self, item: IssueItem) -> None:
        """Register one issue grain.

        Raises:
            TransferError: On a duplicate label or a unit already
                owned by another item.
        """
        if item.label in self.items:
            raise TransferError(
                f"duplicate scoreboard item label {item.label!r}"
            )
        for unit in item.units:
            if unit in self._label_of_unit:
                raise TransferError(
                    f"unit {unit} already owned by item "
                    f"{self._label_of_unit[unit]!r}"
                )
            self._label_of_unit[unit] = item.label
        self.items[item.label] = item

    def add_unit_dep(
        self, unit: TransferUnit, *deps: TransferUnit
    ) -> None:
        """Add retire hazards: ``unit`` retires only after ``deps``."""
        existing = self._unit_deps.get(unit, ())
        self._unit_deps[unit] = existing + deps
        for dep in deps:
            self._dependents.setdefault(dep, []).append(unit)

    # -- queries -----------------------------------------------------------

    def label_of(self, unit: TransferUnit) -> str:
        """The owning item's label."""
        try:
            return self._label_of_unit[unit]
        except KeyError as exc:
            raise TransferError(
                f"unit not on the scoreboard: {unit}"
            ) from exc

    def item_for_unit(self, unit: TransferUnit) -> IssueItem:
        return self.items[self.label_of(unit)]

    def unissued_bytes(self) -> float:
        """Bytes of grains not yet dispatched to any link."""
        return float(
            sum(
                item.size
                for item in self.items.values()
                if item.state in (ItemState.WAITING, ItemState.READY)
            )
        )

    @property
    def outstanding(self) -> bool:
        """True while any grain has not fully landed."""
        return any(
            item.state is not ItemState.LANDED
            for item in self.items.values()
        )

    # -- state transitions -------------------------------------------------

    def ready_items(
        self, delivered: Callable[[IssueItem], float]
    ) -> List[IssueItem]:
        """Promote watermark-satisfied items and list the ready set.

        Args:
            delivered: Callback returning the bytes delivered so far
                for an item's watermark classes (summed across links).

        Returns:
            Every ``READY`` item, best-priority first.
        """
        ready: List[IssueItem] = []
        for item in self.items.values():
            if item.state is ItemState.WAITING:
                if item.watermark_bytes <= (
                    delivered(item) + WATERMARK_SLOP
                ):
                    item.state = ItemState.READY
            if item.state is ItemState.READY:
                ready.append(item)
        ready.sort(key=IssueItem.priority_key)
        return ready

    def escalate(self, label: str) -> bool:
        """Escalate an unlanded item's priority (demand correction).

        Returns:
            True if the item was newly escalated (it was waiting,
            ready, or in flight and not yet flagged).
        """
        item = self.items[label]
        if item.state is ItemState.LANDED or item.escalated:
            return False
        item.escalated = True
        if item.state is ItemState.WAITING:
            # A demand fetch overrides the byte watermark outright.
            item.state = ItemState.READY
        return True

    def mark_issued(
        self, label: str, channel: int, time: float
    ) -> None:
        item = self.items[label]
        if item.state not in (ItemState.WAITING, ItemState.READY):
            raise TransferError(
                f"cannot issue item {label!r} in state {item.state}"
            )
        item.state = ItemState.ISSUED
        item.channel = channel
        item.issue_time = time

    def requeue(
        self, label: str, remaining: Tuple[TransferUnit, ...]
    ) -> None:
        """Return an in-flight item to ``READY`` (link outage).

        Partially delivered bytes on the dead link are lost; the
        surviving units retransmit whole on another link.
        """
        item = self.items[label]
        if item.state is not ItemState.ISSUED:
            raise TransferError(
                f"cannot requeue item {label!r} in state {item.state}"
            )
        if not remaining:
            raise TransferError(
                f"requeue of {label!r} with no remaining units"
            )
        item.units = remaining
        item.state = ItemState.READY
        item.channel = None
        item.issue_time = None

    def mark_landed(
        self, unit: TransferUnit, time: float
    ) -> List[Tuple[TransferUnit, float]]:
        """Record a unit's landing; cascade retires.

        Returns:
            Every unit retired by this landing, ``(unit, retire
            time)``, in cascade order.  The landed unit itself retires
            immediately unless a hazard dependency is still in flight.
        """
        if unit in self.land_times:
            raise TransferError(f"unit landed twice: {unit}")
        self.land_times[unit] = time
        retired: List[Tuple[TransferUnit, float]] = []
        worklist: List[TransferUnit] = [unit]
        while worklist:
            candidate = worklist.pop(0)
            if (
                candidate in self.retire_times
                or candidate not in self.land_times
            ):
                continue
            deps = self._unit_deps.get(candidate, ())
            if any(dep not in self.retire_times for dep in deps):
                continue
            retire_at = self.land_times[candidate]
            for dep in deps:
                retire_at = max(retire_at, self.retire_times[dep])
            self.retire_times[candidate] = retire_at
            retired.append((candidate, retire_at))
            worklist.extend(self._dependents.get(candidate, ()))
        label = self._label_of_unit.get(unit)
        if label is not None:
            item = self.items[label]
            if all(u in self.land_times for u in item.units):
                item.state = ItemState.LANDED
        return retired
