"""Experiment harness: regenerate every paper table and figure."""

from .experiments import (
    BENCHMARK_NAMES,
    ORDERINGS,
    all_experiments,
    bundle,
    figure6_summary,
    table10_data_partitioning,
    table2_statistics,
    table3_base_case,
    table4_invocation_latency,
    table5_parallel_t1,
    table6_parallel_modem,
    table7_interleaved,
    table8_global_data,
    table9_data_breakdown,
)
from .results import ResultTable
from .runner import EXPERIMENTS, main

__all__ = [
    "BENCHMARK_NAMES",
    "ORDERINGS",
    "all_experiments",
    "bundle",
    "figure6_summary",
    "table10_data_partitioning",
    "table2_statistics",
    "table3_base_case",
    "table4_invocation_latency",
    "table5_parallel_t1",
    "table6_parallel_modem",
    "table7_interleaved",
    "table8_global_data",
    "table9_data_breakdown",
    "ResultTable",
    "EXPERIMENTS",
    "main",
]
