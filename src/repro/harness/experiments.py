"""Experiment definitions: one function per paper table/figure.

Every experiment runs on the calibrated synthetic six-benchmark suite
(:mod:`repro.workloads.synthetic`).  Heavy shared work — workload
generation, first-use orders, strict baselines — is computed once per
process through :func:`bundle`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..classfile import class_layout, global_data_breakdown
from ..core import (
    invocation_latency_cycles,
    run_nonstrict,
    strict_baseline,
)
from ..datapart import partition_class
from ..reorder import (
    FirstUseOrder,
    estimate_first_use,
    order_from_profile,
    restructure,
    weighted_first_use,
)
from ..transfer import MODEM_LINK, T1_LINK, NetworkLink, TransferPolicy
from ..vm import synthesize_profile
from ..workloads.spec import PAPER_BENCHMARKS
from ..workloads.synthetic import SyntheticWorkload, generate_workload
from .results import ResultTable

__all__ = [
    "BENCHMARK_NAMES",
    "bundle",
    "table2_statistics",
    "table3_base_case",
    "table4_invocation_latency",
    "table5_parallel_t1",
    "table6_parallel_modem",
    "table7_interleaved",
    "table8_global_data",
    "table9_data_breakdown",
    "table10_data_partitioning",
    "figure6_summary",
    "all_experiments",
]

BENCHMARK_NAMES: Tuple[str, ...] = tuple(
    spec.name for spec in PAPER_BENCHMARKS
)

_LINKS: Tuple[Tuple[str, NetworkLink], ...] = (
    ("T1", T1_LINK),
    ("modem", MODEM_LINK),
)

#: Ordering labels as the paper uses them.
ORDERINGS = ("SCG", "Train", "Test")


@dataclass
class Bundle:
    """All shared per-benchmark artifacts."""

    workload: SyntheticWorkload
    scg: FirstUseOrder
    train: FirstUseOrder
    test: FirstUseOrder
    weighted: FirstUseOrder

    @property
    def name(self) -> str:
        return self.workload.name

    def order(self, label: str) -> FirstUseOrder:
        return {
            "SCG": self.scg,
            "Train": self.train,
            "Test": self.test,
            "weighted": self.weighted,
        }[label]


@lru_cache(maxsize=None)
def bundle(name: str) -> Bundle:
    """Workload plus its four first-use orders, cached per process."""
    workload = generate_workload(name)
    scg = estimate_first_use(workload.program)
    train_profile = synthesize_profile(
        workload.program, workload.train_trace
    )
    train = order_from_profile(
        workload.program,
        train_profile,
        static_order=scg,
    )
    test = order_from_profile(
        workload.program,
        synthesize_profile(workload.program, workload.test_trace),
        static_order=scg,
    )
    weighted = weighted_first_use(
        workload.program, profile=train_profile, cpi=workload.cpi
    )
    return Bundle(
        workload=workload,
        scg=scg,
        train=train,
        test=test,
        weighted=weighted,
    )


@lru_cache(maxsize=None)
def _baseline(name: str, link_name: str):
    item = bundle(name)
    link = dict(_LINKS)[link_name]
    return strict_baseline(
        item.workload.program,
        item.workload.test_trace,
        link,
        item.workload.cpi,
    )


@lru_cache(maxsize=None)
def _normalized(
    name: str,
    link_name: str,
    ordering: str,
    method: str,
    max_streams: Optional[int],
    data_partitioning: bool,
) -> float:
    """Normalized execution time (percent of strict) for one config."""
    item = bundle(name)
    link = dict(_LINKS)[link_name]
    result = run_nonstrict(
        item.workload.program,
        item.workload.test_trace,
        item.order(ordering),
        link,
        item.workload.cpi,
        method=method,
        max_streams=max_streams,
        data_partitioning=data_partitioning,
    )
    base = _baseline(name, link_name)
    return result.normalized_to(base.total_cycles)


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def table2_statistics() -> ResultTable:
    """Table 2: general statistics of the benchmarks."""
    table = ResultTable(
        key="table2",
        title=(
            "Table 2: General statistics of the (synthetic) benchmarks"
        ),
        columns=[
            "Program",
            "Total Files",
            "Size KB",
            "Dyn Instrs (K, test)",
            "Dyn Instrs (K, train)",
            "Static Instrs (K)",
            "% Executed",
            "Total Methods",
            "Instrs/Method",
        ],
    )
    for name in BENCHMARK_NAMES:
        item = bundle(name)
        program = item.workload.program
        layouts = [
            class_layout(classfile) for classfile in program.classes
        ]
        static_instructions = sum(
            len(method.instructions) for _, method in program.methods()
        )
        used = item.workload.test_trace.methods_used()
        used_instructions = sum(
            len(program.method(method).instructions) for method in used
        )
        table.add_row(
            name,
            len(program.classes),
            sum(layout.strict_size for layout in layouts) / 1024,
            item.workload.test_trace.total_instructions / 1000,
            item.workload.train_trace.total_instructions / 1000,
            static_instructions / 1000,
            100.0 * used_instructions / static_instructions,
            program.method_count,
            static_instructions / program.method_count,
        )
    table.notes.append(
        "Size calibrated to Table 3's transfer cycles (the paper's own "
        "Table 2 sizes imply ~2x fewer wire bytes than its Table 3)."
    )
    return table


def table3_base_case() -> ResultTable:
    """Table 3: CPI, execution/transfer cycles, % transfer per link."""
    table = ResultTable(
        key="table3",
        title="Table 3: Base case statistics (strict execution)",
        columns=[
            "Program",
            "CPI",
            "Exec Mcycles",
            "T1 Transfer Mcycles",
            "T1 Total Mcycles",
            "T1 % Transfer",
            "Modem Transfer Mcycles",
            "Modem Total Mcycles",
            "Modem % Transfer",
        ],
    )
    for name in BENCHMARK_NAMES:
        t1 = _baseline(name, "T1")
        modem = _baseline(name, "modem")
        table.add_row(
            name,
            bundle(name).workload.cpi,
            t1.execution_cycles / 1e6,
            t1.transfer_cycles / 1e6,
            t1.total_cycles / 1e6,
            t1.percent_transfer,
            modem.transfer_cycles / 1e6,
            modem.total_cycles / 1e6,
            modem.percent_transfer,
        )
    table.add_average_row()
    return table


def table4_invocation_latency() -> ResultTable:
    """Table 4: invocation latency, strict vs non-strict vs partitioned."""
    table = ResultTable(
        key="table4",
        title=(
            "Table 4: Invocation latency (Mcycles; % decrease vs strict)"
        ),
        columns=[
            "Program",
            "T1 Strict",
            "T1 NonStrict",
            "T1 NS %dec",
            "T1 DataPart",
            "T1 DP %dec",
            "Modem Strict",
            "Modem NonStrict",
            "Modem NS %dec",
            "Modem DataPart",
            "Modem DP %dec",
        ],
    )
    for name in BENCHMARK_NAMES:
        item = bundle(name)
        target = restructure(item.workload.program, item.scg)
        cells: List[float] = []
        for _, link in _LINKS:
            strict = invocation_latency_cycles(
                target, link, TransferPolicy.STRICT
            )
            nonstrict = invocation_latency_cycles(
                target, link, TransferPolicy.NON_STRICT
            )
            partitioned = invocation_latency_cycles(
                target, link, TransferPolicy.DATA_PARTITIONED
            )
            cells.extend(
                [
                    strict / 1e6,
                    nonstrict / 1e6,
                    100.0 * (1 - nonstrict / strict),
                    partitioned / 1e6,
                    100.0 * (1 - partitioned / strict),
                ]
            )
        table.add_row(name, *cells)
    table.add_average_row()
    return table


def _parallel_table(link_name: str, key: str) -> ResultTable:
    limits: Tuple[Tuple[str, Optional[int]], ...] = (
        ("One", 1),
        ("Two", 2),
        ("Four", 4),
        ("Inf", None),
    )
    columns = ["Program"]
    for ordering in ORDERINGS:
        for label, _ in limits:
            columns.append(f"{ordering} {label}")
    table = ResultTable(
        key=key,
        title=(
            f"Table {'5' if link_name == 'T1' else '6'}: Normalized "
            f"execution time, parallel file transfer, {link_name} link"
        ),
        columns=columns,
    )
    for name in BENCHMARK_NAMES:
        cells: List[float] = []
        for ordering in ORDERINGS:
            for _, max_streams in limits:
                cells.append(
                    _normalized(
                        name,
                        link_name,
                        ordering,
                        "parallel",
                        max_streams,
                        False,
                    )
                )
        table.add_row(name, *cells)
    table.add_average_row()
    return table


def table5_parallel_t1() -> ResultTable:
    """Table 5: parallel transfer over T1, limits 1/2/4/inf."""
    return _parallel_table("T1", "table5")


def table6_parallel_modem() -> ResultTable:
    """Table 6: parallel transfer over the modem, limits 1/2/4/inf."""
    return _parallel_table("modem", "table6")


def table7_interleaved() -> ResultTable:
    """Table 7: interleaved transfer, both links, three orderings."""
    columns = ["Program"]
    for link_name, _ in _LINKS:
        for ordering in ORDERINGS:
            columns.append(f"{link_name} {ordering}")
    table = ResultTable(
        key="table7",
        title=(
            "Table 7: Normalized execution time, interleaved file "
            "transfer"
        ),
        columns=columns,
    )
    for name in BENCHMARK_NAMES:
        cells: List[float] = []
        for link_name, _ in _LINKS:
            for ordering in ORDERINGS:
                cells.append(
                    _normalized(
                        name, link_name, ordering, "interleaved",
                        None, False,
                    )
                )
        table.add_row(name, *cells)
    table.add_average_row()
    return table


def table8_global_data() -> ResultTable:
    """Table 8: breakdown of global data and the constant pool."""
    table = ResultTable(
        key="table8",
        title=(
            "Table 8: Breakdown of global data and constant pool "
            "(percent of containing structure)"
        ),
        columns=[
            "Program",
            "CPool",
            "Field",
            "Attrib",
            "Intfc",
            "Utf8",
            "Ints",
            "Float",
            "Long",
            "Double",
            "String",
            "Class",
            "FRef",
            "MRef",
            "NandT",
            "IMRef",
        ],
    )
    for name in BENCHMARK_NAMES:
        program = bundle(name).workload.program
        pool_bytes = 0
        field_bytes = 0
        attribute_bytes = 0
        interface_bytes = 0
        tag_bytes: Dict[str, float] = {}
        for classfile in program.classes:
            breakdown = global_data_breakdown(classfile)
            pool_bytes += breakdown.constant_pool
            field_bytes += breakdown.fields
            attribute_bytes += breakdown.attributes
            interface_bytes += breakdown.interfaces
            for label, percent in breakdown.percent_of_pool().items():
                tag_bytes[label] = tag_bytes.get(label, 0.0) + (
                    percent / 100.0 * breakdown.constant_pool
                )
        total = (
            pool_bytes + field_bytes + attribute_bytes + interface_bytes
        ) or 1
        table.add_row(
            name,
            100.0 * pool_bytes / total,
            100.0 * field_bytes / total,
            100.0 * attribute_bytes / total,
            100.0 * interface_bytes / total,
            *[
                100.0 * tag_bytes.get(label, 0.0) / (pool_bytes or 1)
                for label in (
                    "Utf8",
                    "Ints",
                    "Float",
                    "Long",
                    "Double",
                    "String",
                    "Class",
                    "FRef",
                    "MRef",
                    "NandT",
                    "IMRef",
                )
            ],
        )
    table.add_average_row()
    return table


def table9_data_breakdown() -> ResultTable:
    """Table 9: local vs global data, and the global-data split."""
    table = ResultTable(
        key="table9",
        title=(
            "Table 9: Breakdown of class file data (local vs global; "
            "global split by first use)"
        ),
        columns=[
            "Program",
            "Local KB",
            "Global KB",
            "% Needed First",
            "% In Methods",
            "% Unused",
        ],
    )
    for name in BENCHMARK_NAMES:
        program = bundle(name).workload.program
        local_bytes = 0
        first = methods = unused = 0
        for classfile in program.classes:
            layout = class_layout(classfile)
            local_bytes += layout.local_bytes
            partition = partition_class(classfile)
            first += partition.first_bytes
            methods += partition.method_bytes
            unused += partition.unused_bytes
        global_bytes = first + methods + unused
        table.add_row(
            name,
            local_bytes / 1024,
            global_bytes / 1024,
            100.0 * first / global_bytes,
            100.0 * methods / global_bytes,
            100.0 * unused / global_bytes,
        )
    table.add_average_row()
    table.notes.append(
        "KB columns are wire-scaled (see Table 2 note); the percentage "
        "split matches the paper's Table 9."
    )
    return table


def table10_data_partitioning() -> ResultTable:
    """Table 10: data partitioning with parallel(4) and interleaved."""
    columns = ["Program"]
    for method_label in ("Par4", "Intl"):
        for link_name, _ in _LINKS:
            for ordering in ORDERINGS:
                columns.append(
                    f"{method_label} {link_name} {ordering}"
                )
    table = ResultTable(
        key="table10",
        title=(
            "Table 10: Normalized execution time with global data "
            "partitioning (parallel limit 4, interleaved)"
        ),
        columns=columns,
    )
    for name in BENCHMARK_NAMES:
        cells: List[float] = []
        for method, max_streams in (("parallel", 4), ("interleaved", None)):
            for link_name, _ in _LINKS:
                for ordering in ORDERINGS:
                    cells.append(
                        _normalized(
                            name,
                            link_name,
                            ordering,
                            method,
                            max_streams,
                            True,
                        )
                    )
        table.add_row(name, *cells)
    table.add_average_row()
    return table


def figure6_summary() -> ResultTable:
    """Figure 6: average normalized execution time, all configurations."""
    table = ResultTable(
        key="figure6",
        title=(
            "Figure 6: Average normalized execution time (percent of "
            "strict; lower is better)"
        ),
        columns=[
            "Configuration",
            "T1 SCG",
            "T1 Train",
            "T1 Test",
            "Modem SCG",
            "Modem Train",
            "Modem Test",
        ],
    )
    configurations = (
        ("Parallel File Transfer", "parallel", 4, False),
        ("PFC Data Partitioned", "parallel", 4, True),
        ("Interleaved File Transfer", "interleaved", None, False),
        ("IFC Data Partitioned", "interleaved", None, True),
    )
    for label, method, max_streams, partitioned in configurations:
        cells: List[float] = []
        for link_name, _ in _LINKS:
            for ordering in ORDERINGS:
                values = [
                    _normalized(
                        name,
                        link_name,
                        ordering,
                        method,
                        max_streams,
                        partitioned,
                    )
                    for name in BENCHMARK_NAMES
                ]
                cells.append(sum(values) / len(values))
        table.add_row(label, *cells)
    return table


def all_experiments() -> List[ResultTable]:
    """Every table and figure, in paper order."""
    return [
        table2_statistics(),
        table3_base_case(),
        table4_invocation_latency(),
        table5_parallel_t1(),
        table6_parallel_modem(),
        table7_interleaved(),
        table8_global_data(),
        table9_data_breakdown(),
        table10_data_partitioning(),
        figure6_summary(),
    ]
