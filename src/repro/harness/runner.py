"""Command-line entry point: regenerate the paper's tables.

Usage::

    repro-experiments               # every table and figure
    repro-experiments table5 table7
    repro-experiments --list
    repro-experiments --json figure6
    python -m repro.harness.runner figure6
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List

from .experiments import (
    figure6_summary,
    table10_data_partitioning,
    table2_statistics,
    table3_base_case,
    table4_invocation_latency,
    table5_parallel_t1,
    table6_parallel_modem,
    table7_interleaved,
    table8_global_data,
    table9_data_breakdown,
)
from .results import ResultTable

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS: Dict[str, Callable[[], ResultTable]] = {
    "table2": table2_statistics,
    "table3": table3_base_case,
    "table4": table4_invocation_latency,
    "table5": table5_parallel_t1,
    "table6": table6_parallel_modem,
    "table7": table7_interleaved,
    "table8": table8_global_data,
    "table9": table9_data_breakdown,
    "table10": table10_data_partitioning,
    "figure6": figure6_summary,
}


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'Overlapping "
            "Execution with Transfer Using Non-Strict Execution for "
            "Mobile Programs' (ASPLOS 1998)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment keys (default: all)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list available experiment keys and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of text tables",
    )
    arguments = parser.parse_args(argv)

    if arguments.list:
        for key in EXPERIMENTS:
            print(key)
        return 0

    selected = arguments.experiments or list(EXPERIMENTS)
    unknown = [key for key in selected if key not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"available: {', '.join(EXPERIMENTS)}"
        )
    if arguments.json:
        payload = [EXPERIMENTS[key]().to_dict() for key in selected]
        print(json.dumps(payload, indent=2))
    else:
        for key in selected:
            print(EXPERIMENTS[key]().render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
