"""Result tables: a tiny structured container plus a text renderer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["ResultTable"]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if value == int(value):
            return f"{value:.0f}"
        return f"{value:.1f}"
    return str(value)


@dataclass
class ResultTable:
    """One reproduced table or figure series.

    Attributes:
        key: Short identifier ("table5", "figure6", ...).
        title: Human-readable caption.
        columns: Column headers; the first is usually the benchmark.
        rows: One list of cells per row.
        notes: Caveats or paper-comparison remarks.
    """

    key: str
    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"{self.key}: row has {len(cells)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def add_average_row(self, label: str = "AVG") -> None:
        """Append a row averaging every numeric column."""
        averages: List[Any] = [label]
        for column_index in range(1, len(self.columns)):
            values = [
                row[column_index]
                for row in self.rows
                if isinstance(row[column_index], (int, float))
            ]
            averages.append(
                sum(values) / len(values) if values else ""
            )
        self.rows.append(averages)

    def column(self, name: str) -> List[Any]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def row_for(self, label: Any) -> List[Any]:
        for row in self.rows:
            if row[0] == label:
                return row
        raise KeyError(f"{self.key}: no row {label!r}")

    def cell(self, row_label: Any, column: str) -> Any:
        return self.row_for(row_label)[self.columns.index(column)]

    def render(self) -> str:
        """Render as aligned plain text."""
        formatted = [[str(column) for column in self.columns]] + [
            [_format_cell(cell) for cell in row] for row in self.rows
        ]
        widths = [
            max(len(line[index]) for line in formatted)
            for index in range(len(self.columns))
        ]
        lines = [self.title, ""]
        header = "  ".join(
            cell.ljust(width)
            for cell, width in zip(formatted[0], widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in formatted[1:]:
            lines.append(
                "  ".join(
                    cell.rjust(width) if index else cell.ljust(width)
                    for index, (cell, width) in enumerate(
                        zip(row, widths)
                    )
                )
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }
